package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/consensus"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/wire"
)

// roundResult is the outcome of one in-flight round's decision wait,
// delivered to the sequencer by its waiter goroutine.
type roundResult struct {
	k   uint64
	val []byte
	err error
}

// depth returns the effective pipeline depth (>= 1). It reads the live
// knob, not the static config: SetPipelineDepth may move it between calls,
// and the sequencer reads it outside the protocol lock.
func (p *Protocol) depth() uint64 {
	if d := p.liveDepth.Load(); d > 1 {
		return uint64(d)
	}
	return 1
}

// batchDelay returns the live adaptive-batching time-trigger window.
func (p *Protocol) batchDelay() time.Duration {
	return time.Duration(p.liveBatchDelay.Load())
}

// sequencerTask is the heart of the ordering protocol (Fig. 2), generalized
// into a round pipeline: up to PipelineDepth consensus rounds may be in
// flight at once (proposed, decision pending) while decided batches commit
// strictly in round order — so the Agreed queue every process builds is
// identical to the sequential sequencer's. Depth 1 reproduces Fig. 2
// exactly: propose k, wait until decided(k), commit, repeat.
//
// The task is an event loop: pump fills the pipeline window (restarting
// waiters for logged proposals and submitting fresh adaptive batches),
// commitReady drains in-order decisions, and the select waits for the next
// decision, a wake (new messages, gossip news, staged state transfer), or
// the adaptive-batching time trigger.
func (p *Protocol) sequencerTask() {
	defer p.wg.Done()
	results := make(map[uint64][]byte) // decided out of order, pending commit
	var cooldown time.Time             // backoff after a discarded wait
	for {
		if p.ctx.Err() != nil {
			return
		}
		p.maybeAdopt()

		p.mu.Lock()
		head := p.k
		p.mu.Unlock()
		for r := range results {
			if r < head {
				delete(results, r) // committed or skipped by an adoption
			}
		}

		var delay time.Duration
		if wait := time.Until(cooldown); wait > 0 {
			delay = wait
		} else {
			delay = p.pump(results)
		}

		if p.commitReady(results) {
			continue // the window slid: refill it before blocking
		}

		var timer *time.Timer
		var timerC <-chan time.Time
		if delay > 0 {
			timer = time.NewTimer(delay)
			timerC = timer.C
		}
		select {
		case <-p.ctx.Done():
		case res := <-p.resCh:
			p.handleResult(res, results, &cooldown)
		case <-p.wake:
			cooldown = time.Time{} // news may unblock a discarded round
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// handleResult absorbs one waiter outcome. Decisions park in results until
// their turn; failures (interrupt by a state transfer, instance discarded
// by peers) back off until the next gossip brings news or an adoption skips
// the round.
func (p *Protocol) handleResult(res roundResult, results map[uint64][]byte, cooldown *time.Time) {
	p.mu.Lock()
	delete(p.inflightRounds, res.k)
	head := p.k
	p.mu.Unlock()
	if res.err != nil {
		// Stale failures (res.k < head) were already skipped by an
		// adoption; backing off for them would freeze fresh proposals
		// right after the node caught up.
		if res.k >= head && p.ctx.Err() == nil && errors.Is(res.err, consensus.ErrDiscarded) {
			*cooldown = time.Now().Add(p.cfg.GossipInterval)
		}
		return
	}
	if res.k >= head {
		results[res.k] = res.val
	}
}

// commitReady commits decided rounds in order, starting at the head.
func (p *Protocol) commitReady(results map[uint64][]byte) bool {
	committed := false
	for {
		p.mu.Lock()
		head := p.k
		p.mu.Unlock()
		val, ok := results[head]
		if !ok {
			return committed
		}
		if !p.commit(head, val) {
			// Ring mode: the head round is payload-starved. Keep its
			// decision parked in results; the select blocks until an
			// arrival (ring sink, gossip, pull reply) pokes a retry.
			return committed
		}
		delete(results, head)
		committed = true
	}
}

// pump fills the pipeline window [k, k+depth): rounds with a locally known
// decision short-circuit into results, rounds with a logged proposal get a
// decision waiter (re-proposing idempotently so a driver runs), and the
// first open round receives a fresh proposal assembled under the adaptive
// batching triggers. The returned duration, when positive, says how long
// the sequencer may sleep before the time trigger ripens a held-back batch.
func (p *Protocol) pump(results map[uint64][]byte) time.Duration {
	depth := p.depth()
	for {
		p.mu.Lock()
		if p.pending != nil {
			p.mu.Unlock()
			return 0 // adopt first; anything proposed now would be stale
		}
		head := p.k
		var r uint64
		slot := false
		for r = head; r < head+depth; r++ {
			if _, ok := results[r]; ok {
				continue
			}
			if _, ok := p.inflightRounds[r]; ok {
				continue
			}
			slot = true
			break
		}
		p.mu.Unlock()
		if !slot {
			return 0 // window full: wait for a decision
		}

		if v, ok := p.cons.DecidedLocal(r); ok {
			results[r] = v
			continue
		}
		if prop, ok := p.cons.Proposal(r); ok {
			// Logged by a previous incarnation or an interrupted wait:
			// re-propose idempotently so a driver pushes it, then wait.
			if err := p.cons.Propose(r, prop); err != nil {
				return 0 // below the GC floor: an adoption will skip it
			}
			p.startWaiter(r)
			continue
		}

		batch, delay, ok := p.assembleBatch(r)
		if !ok {
			return delay
		}
		// Pooled: Propose copies the proposal before logging it.
		w := wire.GetWriter(64)
		if p.ringMode() {
			// Ordering/dissemination split: the consensus value is the ID
			// vector — a few dozen bytes per message however large the
			// payloads are. The bodies travel the ring (disseminate).
			recs := make([]msg.IDRec, len(batch))
			for i, m := range batch {
				recs[i] = msg.Rec(m)
			}
			msg.EncodeIDVec(w, recs)
		} else {
			msg.EncodeBatch(w, batch)
		}
		// "Proposed_p[k_p] ← Unordered_p; log(Proposed_p[k_p]);
		// propose(k_p, ...)". The log is the first operation of the
		// Consensus (§4.2) — Propose issues it. On a group-commit engine
		// the write is asynchronous: Propose returns once it is issued,
		// the engine coordinates only after it is durable, and the
		// proposal logs of all PipelineDepth in-flight rounds share one
		// fsync. The decision wait below resolves only on a durable
		// decision, so the commit path still never acts ahead of the log.
		err := p.cons.Propose(r, w.Bytes())
		wire.PutWriter(w)
		if err != nil {
			p.unmarkRound(r)
			return 0
		}
		for _, m := range batch {
			p.tr.Mark(m.ID, obs.StPropose)
		}
		p.startWaiter(r)
		p.emitTentative(r, batch)
	}
}

// emitTentative publishes the optimistic prediction for freshly proposed
// round r (Config.OnTentative): the batch, in the canonical order
// appendBatch will apply, at the positions it will occupy if the proposal
// wins the round — which, while the sequencer is stable, it does. Only
// fresh local proposals are predicted: replayed proposals are not (their
// outcome is already settled in the log), and neither are proposals for
// rounds the group is known to have decided (p.gossipK > r — a behind-pull
// proposal almost surely loses to the already-decided batch).
func (p *Protocol) emitTentative(r uint64, batch []msg.Message) {
	cb := p.cfg.OnTentative
	if cb == nil || len(batch) == 0 {
		return
	}
	pred := append([]msg.Message(nil), batch...)
	msg.SortCanonical(pred)
	p.mu.Lock()
	if p.stopped || r < p.k || p.gossipK > r {
		p.mu.Unlock()
		return
	}
	t := tentRound{round: r, from: p.tentNextPos}
	out := make([]Delivery, 0, len(pred))
	for _, m := range pred {
		if p.ds.contains(m.ID) {
			continue
		}
		t.ids = append(t.ids, m.ID)
		out = append(out, Delivery{
			Msg:       m,
			Group:     p.cfg.Group,
			Round:     r,
			Pos:       t.from + uint64(len(t.ids)-1),
			Tentative: true,
		})
	}
	if len(t.ids) == 0 {
		p.mu.Unlock()
		return
	}
	p.tentNextPos = t.from + uint64(len(t.ids))
	p.tentative = append(p.tentative, t)
	p.met.tentativeDeliveries.Add(uint64(len(t.ids)))
	p.mu.Unlock()
	// Same goroutine as commit's callbacks (the sequencer), so tentative
	// and authoritative deliveries never interleave out of order.
	for _, d := range out {
		p.tr.Mark(d.Msg.ID, obs.StTentative)
		cb(d)
	}
}

// assembleBatch collects the proposal for fresh round r: the pending
// unordered messages (those not already inside an in-flight proposal),
// truncated by MaxBatch / MaxBatchBytes. ok=false means the round must not
// be proposed yet; a positive delay says when the time trigger ripens it.
func (p *Protocol) assembleBatch(r uint64) (batch []msg.Message, delay time.Duration, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending != nil || r < p.k || r >= p.k+p.depth() {
		return nil, 0, false // the world moved while the lock was free
	}
	if p.sealed {
		if r > p.sealFinal {
			return nil, 0, false // the sealed sequence ends at sealFinal
		}
		// Drain: propose empty rounds for the remainder of the sealed
		// sequence, so every process's counter reaches final+1 without
		// admitting new content. Proposals logged before the seal still
		// compete and may win these rounds — their messages are delivered;
		// everything else becomes an orphan for the successor group.
		p.met.proposalsSubmitted.Inc()
		if r > p.k {
			p.met.pipelinedProposals.Inc()
		}
		return nil, 0, true
	}
	snap := p.unordered.Slice()
	pending := make([]msg.Message, 0, len(snap))
	pendingBytes := 0
	for _, m := range snap {
		if _, busy := p.inflightMsgs[m.ID]; busy {
			continue
		}
		pending = append(pending, m)
		pendingBytes += len(m.Payload)
	}
	// Per-sender fairness: when the pending pool overflows the batch caps,
	// a canonical-order truncation would fill the whole batch from the
	// lowest-pid hot broadcaster and starve everyone behind it. Interleave
	// round-robin across senders first, so the truncation cuts every
	// sender's tail instead.
	if (p.cfg.MaxBatch > 0 && len(pending) > p.cfg.MaxBatch) ||
		(p.cfg.MaxBatchBytes > 0 && pendingBytes > p.cfg.MaxBatchBytes) {
		pending = fairInterleave(pending)
	}
	var size int
	full, leftover := false, false
	for _, m := range pending {
		if (p.cfg.MaxBatch > 0 && len(batch) >= p.cfg.MaxBatch) ||
			(p.cfg.MaxBatchBytes > 0 && len(batch) > 0 && size+len(m.Payload) > p.cfg.MaxBatchBytes) {
			full, leftover = true, true
			break
		}
		batch = append(batch, m)
		size += len(m.Payload)
	}
	if (p.cfg.MaxBatchBytes > 0 && size >= p.cfg.MaxBatchBytes) ||
		(p.cfg.MaxBatch > 0 && len(batch) >= p.cfg.MaxBatch) {
		full = true // at a size cap: the batch cannot grow, don't delay it
	}
	// behind: the group decided rounds we have not learned; propose (even
	// an empty batch) so WaitDecided pulls the missing decisions in.
	behind := p.gossipK > r
	if len(batch) == 0 && !behind {
		if p.cfg.IdleHeartbeat <= 0 || r != p.k {
			return nil, 0, false // nothing to order and nothing to learn
		}
		// Idle heartbeat: propose an empty round at the head once no round
		// has committed for (PID+1) idle intervals. The stagger means
		// normally only the lowest live process fires; duplicates are
		// harmless empty rounds. This keeps an idle group's round counter
		// advancing, so a cross-group merge frontier — and the checkpoint
		// folds gated on it — moves past the group instead of pinning on it.
		deadline := p.lastProgress.Add(p.cfg.IdleHeartbeat * time.Duration(p.cfg.PID+1))
		if wait := time.Until(deadline); wait > 0 {
			return nil, wait, false // not idle long enough yet
		}
		p.met.heartbeatRounds.Inc()
	}
	if bd := p.batchDelay(); len(batch) > 0 && !full && !behind && bd > 0 {
		if wait := bd - time.Since(p.pendingSince); wait > 0 {
			return nil, wait, false // hold back: let the batch grow
		}
	}
	for _, m := range batch {
		p.inflightMsgs[m.ID] = r
	}
	if !leftover {
		p.pendingSince = time.Time{}
	}
	p.met.proposalsSubmitted.Inc()
	p.met.proposedMessages.Add(uint64(len(batch)))
	if len(batch) > 0 {
		// Seal cause feeds the batch-delay autotuner: full seals say the
		// delay is slack (size caps fire first), timer seals say load is
		// too light to fill a batch within the window.
		if full {
			p.met.batchFullSeals.Inc()
		} else {
			p.met.batchTimerSeals.Inc()
		}
	}
	if r > p.k {
		p.met.pipelinedProposals.Inc()
	}
	for _, m := range batch {
		p.tr.Mark(m.ID, obs.StBatchSeal)
	}
	return batch, 0, true
}

// fairInterleave reorders a canonically sorted pending slice into a
// round-robin across senders: message i of every sender precedes message
// i+1 of any sender. Within one sender the canonical (sequence) order is
// preserved, so the batch truncation that follows takes an even share from
// each sender's head instead of one sender's entire backlog.
func fairInterleave(pending []msg.Message) []msg.Message {
	// Canonical order sorts by sender first: per-sender runs are
	// contiguous.
	var runs [][]msg.Message
	start := 0
	for i := 1; i <= len(pending); i++ {
		if i == len(pending) || pending[i].ID.Sender != pending[start].ID.Sender {
			runs = append(runs, pending[start:i])
			start = i
		}
	}
	if len(runs) <= 1 {
		return pending
	}
	out := make([]msg.Message, 0, len(pending))
	for i := 0; len(out) < len(pending); i++ {
		for _, run := range runs {
			if i < len(run) {
				out = append(out, run[i])
			}
		}
	}
	return out
}

// unmarkRound releases the in-flight marks taken for round r when its
// proposal could not be submitted.
func (p *Protocol) unmarkRound(r uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	leftover := false
	for id, rr := range p.inflightMsgs {
		if rr == r {
			delete(p.inflightMsgs, id)
			leftover = true
		}
	}
	if leftover {
		p.notePendingLocked()
	}
}

// startWaiter forks a goroutine waiting for round r's decision; the result
// lands on resCh for the sequencer to commit in order. The waiter's context
// is the per-round interrupt handle (Fig. 3 line (e) generalizes to
// cancelling the whole window when a state transfer arrives).
func (p *Protocol) startWaiter(r uint64) {
	p.mu.Lock()
	if _, ok := p.inflightRounds[r]; ok {
		p.mu.Unlock()
		return
	}
	wctx, cancel := context.WithCancel(p.ctx)
	p.inflightRounds[r] = cancel
	if p.pending != nil {
		cancel() // an adoption is staged: don't outwait it
	}
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		val, err := p.cons.WaitDecided(wctx, r)
		cancel()
		select {
		case p.resCh <- roundResult{k: r, val: val, err: err}:
		case <-p.ctx.Done():
		}
	}()
}

// interruptInflightLocked cancels every in-flight decision wait (the
// pipelined form of Fig. 3's "terminate task sequencer"). p.mu held.
func (p *Protocol) interruptInflightLocked() {
	for _, cancel := range p.inflightRounds {
		cancel()
	}
}

// maybeAdopt applies a pending state transfer (Fig. 3's "upon receive
// state" when p is late): in-flight waits were interrupted, the state is
// installed, rounds are skipped, and the pipeline restarts from the new
// round.
func (p *Protocol) maybeAdopt() {
	p.mu.Lock()
	if p.pending == nil {
		p.mu.Unlock()
		return
	}
	newDS, newK := p.pending, p.pendingK
	p.pending = nil
	if newK <= p.k {
		p.mu.Unlock()
		return // stale transfer; we caught up on our own
	}
	p.interruptInflightLocked()
	clear(p.inflightMsgs)
	oldNext := p.ds.nextPos()
	p.ds.adopt(newDS)
	p.k = newK
	if p.sealed && !p.drained && p.k >= p.sealFinal+1 {
		p.drained = true
		close(p.drainedCh)
	}
	if p.starved != nil && p.starved.round < p.k {
		p.starved = nil // the adoption skipped the payload-starved round
	}
	p.unordered.SubtractDelivered(p.ds.contains)
	if p.unordered.Len() > 0 {
		p.pendingSince = time.Now()
	} else {
		p.pendingSince = time.Time{}
	}
	// Release Broadcast callers whose messages the adopted state covers.
	for id := range p.waiters {
		if p.ds.contains(id) {
			p.notifyWaitersLocked(id)
		}
	}
	p.met.stateAdopted.Inc()
	var byTransfer int64
	if next := p.ds.nextPos(); next > oldNext {
		p.met.deliveredByTransfer.Add(next - oldNext)
		byTransfer = int64(next - oldNext)
	}
	p.fl.Event(obs.EvStateAdopt, p.cfg.Group, newK, byTransfer, 0, "state transfer adopted")
	// The adopted sequence jumps past every predicted round: the
	// speculative suffix is void, whatever those rounds end up deciding.
	revokeFrom, revoked := p.revokeAllTentativeLocked()
	base := p.ds.snapshotBase()
	suffix := p.tagGroup(p.ds.deliveries())
	restoreCb := p.cfg.OnRestore
	deliverCb := p.cfg.OnDeliver
	skipCb := p.cfg.OnRoundSkip
	revokeCb := p.cfg.OnRevoke
	w := wire.GetWriter(256)
	defer wire.PutWriter(w)
	w.U64(p.k)
	p.ds.encode(w)
	ckptBytes := w.Bytes()
	p.mu.Unlock()

	if revoked && revokeCb != nil {
		// Before the restore callback: speculative state goes first, then
		// the application resets to the adopted snapshot.
		revokeCb(p.cfg.Group, revokeFrom)
	}
	if restoreCb != nil {
		restoreCb(base)
	}
	if deliverCb != nil {
		for _, d := range suffix {
			deliverCb(d)
		}
	}
	if skipCb != nil {
		// The adoption jumped the round counter: rounds never committed
		// here will never reach OnRound.
		skipCb(p.cfg.Group, newK)
	}

	// Persist the adopted state as a checkpoint so a crash right after
	// adoption does not replay into Consensus instances that peers may
	// have garbage-collected, then drop our own state for the skipped
	// instances. (Their decisions are stable — the transferred Agreed
	// queue contains them — so discarding acceptor cells is safe.)
	if err := p.st.Put(keyCkpt, ckptBytes); err != nil {
		return // dying incarnation
	}
	discard := newK
	if p.cfg.DiscardFloor != nil {
		if f := p.cfg.DiscardFloor(); f < discard {
			discard = f
		}
	}
	fw := wire.GetWriter(16)
	fw.U64(discard)
	_ = p.st.Put(keyGCFloor, fw.Bytes())
	wire.PutWriter(fw)
	_ = p.cons.DiscardBelow(discard)
	p.mu.Lock()
	if discard > p.gcFloor {
		p.gcFloor = discard
	}
	p.mu.Unlock()
	if cb := p.cfg.OnCheckpoint; cb != nil {
		cb(newK)
	}
}
