package core

import (
	"context"
	"time"

	"repro/internal/msg"
	"repro/internal/wire"
)

// sequencerTask is the heart of the ordering protocol (Fig. 2): in round k
// the process proposes its Unordered set to the k-th Consensus instance and
// appends the decided batch to the Agreed queue.
func (p *Protocol) sequencerTask() {
	defer p.wg.Done()
	for {
		if p.ctx.Err() != nil {
			return
		}
		p.maybeAdopt()

		p.mu.Lock()
		k := p.k
		p.mu.Unlock()

		if _, ok := p.cons.Proposal(k); !ok {
			// "wait until ((Unordered_p ≠ ∅) or (gossip-k_p > k_p))"
			if !p.waitProposable() {
				return
			}
			p.mu.Lock()
			if p.pending != nil {
				p.mu.Unlock()
				continue // adopt first; the proposal would be stale
			}
			k = p.k
			batch := p.unordered.Slice()
			if p.cfg.MaxBatch > 0 && len(batch) > p.cfg.MaxBatch {
				batch = batch[:p.cfg.MaxBatch]
			}
			p.stats.ProposalsSubmitted++
			p.mu.Unlock()

			w := wire.NewWriter(64)
			msg.EncodeBatch(w, batch)
			// "Proposed_p[k_p] ← Unordered_p; log(Proposed_p[k_p]);
			// propose(k_p, ...)". The log is the first operation of
			// the Consensus (§4.2) — Propose performs it.
			if err := p.cons.Propose(k, w.Bytes()); err != nil {
				// Below the GC floor (a state transfer adopted a
				// higher round concurrently) or storage death.
				continue
			}
		}

		// "wait until decided(k_p, result)" — interruptible by a state
		// transfer (Fig. 3 line (e) terminates the sequencer task).
		wctx, cancel := context.WithCancel(p.ctx)
		p.mu.Lock()
		p.seqInterrupt = cancel
		if p.pending != nil {
			cancel()
		}
		p.mu.Unlock()

		result, err := p.cons.WaitDecided(wctx, k)

		p.mu.Lock()
		p.seqInterrupt = nil
		p.mu.Unlock()
		cancel()

		if err != nil {
			if p.ctx.Err() != nil {
				return
			}
			// Interrupted by a state transfer, or the instance was
			// garbage-collected by peers. Wait for an adoption (or
			// the next gossip) rather than spinning on WaitDecided.
			select {
			case <-p.ctx.Done():
				return
			case <-p.wake:
			case <-time.After(p.cfg.GossipInterval):
			}
			continue
		}
		p.commit(k, result)
	}
}

// waitProposable blocks until there is something to propose, the process
// learns it lagged behind, or a state transfer is pending. False means the
// incarnation ended.
func (p *Protocol) waitProposable() bool {
	for {
		p.mu.Lock()
		ready := p.unordered.Len() > 0 || p.gossipK > p.k || p.pending != nil
		p.mu.Unlock()
		if ready {
			return true
		}
		select {
		case <-p.ctx.Done():
			return false
		case <-p.wake:
		}
	}
}

// maybeAdopt applies a pending state transfer (Fig. 3's "upon receive
// state" when p is late): the sequencer was interrupted, the state is
// installed, rounds are skipped, and the sequencer restarts from the new
// round.
func (p *Protocol) maybeAdopt() {
	p.mu.Lock()
	if p.pending == nil {
		p.mu.Unlock()
		return
	}
	newDS, newK := p.pending, p.pendingK
	p.pending = nil
	if newK <= p.k {
		p.mu.Unlock()
		return // stale transfer; we caught up on our own
	}
	oldNext := p.ds.nextPos()
	p.ds.adopt(newDS)
	p.k = newK
	p.unordered.SubtractDelivered(p.ds.contains)
	// Release Broadcast callers whose messages the adopted state covers.
	for id := range p.waiters {
		if p.ds.contains(id) {
			p.notifyWaitersLocked(id)
		}
	}
	p.stats.StateAdopted++
	if next := p.ds.nextPos(); next > oldNext {
		p.stats.DeliveredByTransfer += next - oldNext
	}
	base := p.ds.snapshotBase()
	suffix := p.ds.deliveries()
	restoreCb := p.cfg.OnRestore
	deliverCb := p.cfg.OnDeliver
	w := wire.NewWriter(256)
	w.U64(p.k)
	p.ds.encode(w)
	ckptBytes := w.Bytes()
	p.mu.Unlock()

	if restoreCb != nil {
		restoreCb(base)
	}
	if deliverCb != nil {
		for _, d := range suffix {
			deliverCb(d)
		}
	}

	// Persist the adopted state as a checkpoint so a crash right after
	// adoption does not replay into Consensus instances that peers may
	// have garbage-collected, then drop our own state for the skipped
	// instances. (Their decisions are stable — the transferred Agreed
	// queue contains them — so discarding acceptor cells is safe.)
	if err := p.st.Put(keyCkpt, ckptBytes); err != nil {
		return // dying incarnation
	}
	_ = p.cons.DiscardBelow(newK)
	p.mu.Lock()
	if newK > p.gcFloor {
		p.gcFloor = newK
	}
	p.mu.Unlock()
}
