// Package core implements the paper's contribution: the transformation of a
// crash-recovery Consensus protocol into a crash-recovery Atomic Broadcast
// protocol.
//
// The basic protocol (Fig. 2) is obtained with a Config whose alternative
// options are all zero: the only stable-storage write on the broadcast path
// is the initial value proposed to each Consensus instance — and that write
// is performed by the Consensus itself as its first operation (§4.3), so
// the broadcast layer adds no log operations at all.
//
// The alternative protocol (Figs. 3–4) is enabled piecewise:
//
//   - CheckpointEvery > 0 logs (k, Agreed) periodically, shortening the
//     replay phase (§5.1) and, together with a Checkpointer, replacing the
//     delivered prefix by an application-level checkpoint with a vector
//     clock, bounding log growth (§5.2);
//   - Delta > 0 enables Δ-triggered state transfer so a process that was
//     down for a long time skips the Consensus instances it missed (§5.3);
//   - BatchedBroadcast logs the Unordered set so A-broadcast returns before
//     the message is ordered (§5.4);
//   - IncrementalLog logs only the new part of the Unordered set (§5.5).
package core

import (
	"errors"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// ErrStopped is returned when the process incarnation ends while an
// operation is in flight. A Broadcast interrupted this way "may have or may
// have not been A-broadcast" (§4.2) — exactly as if the caller crashed just
// before invoking it.
var ErrStopped = errors.New("core: protocol stopped")

// ErrSealed is returned by Broadcast/BroadcastAsync on a group that has been
// sealed for retirement: nothing was admitted, so the caller can safely
// re-route the payload to the group's successor (live resharding's
// bounce-with-retry). It is also the outcome of a Broadcast wait cut short by
// the drain — in that case the message "may have or may have not been
// A-broadcast" (same semantics as a crash mid-call): if it was ordered before
// the final round it is delivered in the retiring group, otherwise the orphan
// re-injection path carries the same MsgID into the successor.
var ErrSealed = errors.New("core: group sealed for retirement")

// Delivery is one A-delivered message with its agreed global position.
// Round is the Consensus instance that ordered the message; Pos is the
// message's index in the single total order (identical at every process —
// the checker verifies this). Group identifies the ordering group that
// delivered the message (always 0 unless the process runs sharded
// multi-group ordering), so one shared OnDeliver handler can serve every
// group of a sharded process.
//
// Tentative marks an optimistic delivery emitted on the fast path (see
// Config.OnTentative): the position is the sequencer's prediction, made
// before the round's Consensus decision is durable, and is only final once
// the matching OnConfirm fires. Deliveries from OnDeliver, Sequence and
// recovery replay are never tentative.
type Delivery struct {
	Msg       msg.Message
	Group     ids.GroupID
	Round     uint64
	Pos       uint64
	Tentative bool
}

// Snapshot is an application-level checkpoint (§5.2): the pair
// (A-checkpoint(σ), VC(σ)) plus bookkeeping that anchors it in the total
// order.
type Snapshot struct {
	// App is the opaque application state that logically contains every
	// message covered by VC. Nil when no Checkpointer is configured.
	App []byte
	// VC is the checkpoint vector clock.
	VC vclock.VC
	// Rounds is the number of Consensus instances folded into the
	// snapshot. Without a merge floor every delivered round is folded, so
	// the next round to replay is exactly Rounds; under a merge floor
	// (Config.MergeFloor) the fold may stop short of the round counter and
	// the suffix retains the explicitly delivered rounds in
	// [Rounds, k) — the checkpoint cell's own round counter, not
	// Snapshot.Rounds, is where replay resumes.
	Rounds uint64
	// Pos is the number of messages logically contained (the global
	// position of the first suffix message).
	Pos uint64
}

// Disseminator is the payload dissemination plane a ring-mode protocol
// publishes its locally originated messages to (internal/dissem.Ring bound
// to this protocol's group). Publish may block briefly — that is the
// dissemination plane's backpressure on broadcasters.
type Disseminator interface {
	Publish(m msg.Message)
}

// Checkpointer is the upcall interface of Fig. 5. Implementations fold
// delivered messages into an opaque state and reinstall adopted states.
// Methods are called from protocol goroutines and must not call back into
// the Protocol.
type Checkpointer interface {
	// Checkpoint returns the application state obtained by applying
	// delivered to prev. Checkpoint(nil, nil) must return the initial
	// state (the paper's A-checkpoint(⊥)).
	Checkpoint(prev []byte, delivered []msg.Message) []byte
	// Restore installs an adopted application state (recovery or state
	// transfer).
	Restore(app []byte)
}

// Config parameterizes a Protocol.
type Config struct {
	PID ids.ProcessID
	N   int
	// Incarnation qualifies locally generated message identities so they
	// never repeat across crashes. The node layer logs it.
	Incarnation uint32
	// Group identifies the ordering group this protocol instance belongs
	// to when the process runs sharded multi-group ordering. It does not
	// change the protocol — each group is an independent instance of the
	// paper's algorithm — it only tags outgoing Deliveries so shared
	// handlers can tell groups apart. 0 (the default) is the sole group
	// of an unsharded deployment.
	Group ids.GroupID

	// GossipInterval is the period of the gossip task (default 20ms).
	GossipInterval time.Duration
	// GossipMaxMessages caps the unordered messages piggybacked on one
	// gossip (default 512); fairness only needs repetition, not size.
	// When the Unordered set is larger, successive ticks rotate the
	// window so every message is advertised within a few ticks.
	GossipMaxMessages int
	// DigestGossip makes the periodic gossip task advertise message IDs
	// instead of shipping full payloads: receivers pull only the payloads
	// they miss (anti-entropy). The eager delta push and the recovery
	// round-discovery of §4.2 are unchanged; steady-state gossip
	// bandwidth drops from O(|Unordered| * payload) to O(|Unordered|)
	// IDs. Off by default (the paper's full-payload gossip).
	DigestGossip bool
	// MaxBatch caps the messages proposed to one Consensus instance
	// (0 = no cap).
	MaxBatch int
	// MaxBatchBytes caps the cumulative payload bytes aggregated into one
	// proposal (0 = no cap). Reaching the cap makes a batch "full", which
	// overrides MaxBatchDelay's time trigger.
	MaxBatchBytes int
	// MaxBatchDelay, when positive, holds back a non-full proposal until
	// the oldest pending unordered message has waited this long, so light
	// load aggregates into bigger batches (adaptive batching: a proposal
	// is submitted on the earlier of the size trigger and the time
	// trigger). Zero proposes as soon as the round is open.
	MaxBatchDelay time.Duration
	// PipelineDepth is the number of consensus rounds the sequencer may
	// keep in flight concurrently (proposed, decision pending). 0 or 1
	// gives the paper's strictly sequential sequencer (Fig. 2); depth d
	// lets round k+d-1 be proposed while round k's decision is still
	// outstanding. Decided batches always commit in round order, so the
	// delivery sequence is identical to the sequential sequencer's, and
	// recovery replays (or truncates, via state transfer) in-flight
	// rounds from the consensus log.
	PipelineDepth int
	// MaxPipelineDepth, when positive, is the ceiling a live resize
	// (SetPipelineDepth) may deepen the pipeline to. The decision channel
	// and learner ask-ahead are sized for it at construction, so the resize
	// itself is just an atomic store. 0 pins the depth to PipelineDepth
	// (no live resizing headroom).
	MaxPipelineDepth int

	// CheckpointEvery triggers the checkpoint task every so many rounds
	// (0 disables it: basic protocol).
	CheckpointEvery int
	// Delta is the de-synchronization threshold that triggers a state
	// transfer (0 disables state transfer).
	Delta uint64
	// BatchedBroadcast makes Broadcast log the Unordered set and return
	// without waiting for the message to be ordered (§5.4).
	BatchedBroadcast bool
	// IncrementalLog logs only new Unordered entries (§5.5); it only
	// matters when BatchedBroadcast is set.
	IncrementalLog bool
	// Checkpointer, when set with CheckpointEvery, replaces the
	// delivered prefix with application checkpoints (§5.2).
	Checkpointer Checkpointer

	// IdleHeartbeat, when positive, makes the sequencer propose an empty
	// heartbeat round after the process has seen no committed round for
	// this long, so a quiescent group keeps advancing its round counter —
	// which is what lets a cross-group merge frontier (and the checkpoint
	// folds gated on it) move past an idle group. The deadline is
	// staggered by PID (process p waits (p+1) intervals) so normally only
	// the lowest live process proposes; any duplicate heartbeats are
	// harmless empty rounds. Heartbeat rounds deliver nothing, so they
	// grow neither the delivery suffix nor (past the next checkpoint's
	// DiscardBelow) the consensus log. 0 disables heartbeats.
	IdleHeartbeat time.Duration

	// Dissem, when set, enables ring dissemination — the ordering/
	// dissemination split: locally broadcast payloads are published to the
	// dissemination plane (a successor ring; see internal/dissem) instead
	// of the eager full-payload gossip push, proposals carry ID+checksum
	// vectors (msg.IDRec) instead of bodies, and delivery is gated on
	// "ID ordered ∧ payload present" — a decided round whose payloads have
	// not all arrived parks until the missing ones are pulled over the
	// digest-gossip repair path. DigestGossip is forced on (an eager
	// full-payload gossip would defeat the split). Every process of a
	// deployment must agree on this setting: ring-mode and full-payload
	// proposals are different wire formats for the same consensus values.
	Dissem Disseminator

	// MergeFloor, when set, bounds how far a checkpoint may fold the
	// delivered prefix: CheckpointNow folds only rounds strictly below
	// min(k, MergeFloor()). A sharded process that consumes the merged
	// cross-group sequence sets it to the process-wide merge frontier
	// (group.Stream.Frontier), so per-round delivery metadata survives
	// until every group of the process has passed the round — which is
	// what makes application checkpointing compose with merged-mode
	// sharding. Nil folds everything below k (the paper's §5.2 behavior).
	// The hook is called under the protocol lock and must not call back
	// into the Protocol.
	MergeFloor func() uint64

	// DiscardFloor, when set, caps how far a checkpoint may discard
	// Consensus state and raise the GC floor: CheckpointNow discards only
	// below min(k, DiscardFloor()). The checkpoint cell itself is still
	// logged at the full round counter — local durability never waits —
	// but rounds a slow peer may still need to re-learn stay in the
	// Consensus log, so a recovering process finds them live instead of
	// being forced into a state transfer. A sharded deployment sets this
	// to the cluster-wide minimum of the gossiped durable frontiers
	// (group.FloorTracker.ClusterFloor localized to the group's span).
	// Nil discards everything below k (the paper's Fig. 4 line (c)).
	// Called outside the protocol lock; it may take its own locks but
	// must not call back into the Protocol.
	DiscardFloor func() uint64

	// OnCheckpoint, when set, is invoked after a checkpoint cell has been
	// durably logged, with the round counter the cell records — i.e. the
	// rounds this process can recover without any peer's help. Fired by
	// CheckpointNow, by a state-transfer adoption (which logs the adopted
	// state as a checkpoint), and once during recovery with the restored
	// counter. The sharded layer feeds it to the durable-frontier gossip.
	OnCheckpoint func(k uint64)

	// OnDeliver, when set, is invoked in delivery order for every
	// A-delivered message (including re-deliveries during the replay
	// phase, which reconstruct the application state in the basic
	// protocol).
	OnDeliver func(Delivery)
	// OnRestore, when set, is invoked when the process adopts a
	// checkpoint or a state transfer instead of replaying: the
	// application must reset itself to the snapshot.
	OnRestore func(Snapshot)
	// OnRound, when set, is invoked after every committed Consensus
	// round, in round order, with the round's (possibly empty) batch of
	// new deliveries — the per-round structure a streaming cross-group
	// merge consumes (group.Stream.NoteRound). Unlike OnDeliver it also
	// fires for empty rounds, so a merge frontier can advance past them.
	// Re-commits during the recovery replay phase fire again (consumers
	// deduplicate by round number); rounds skipped by a state-transfer
	// adoption do not fire at all — OnRoundSkip reports the jump instead.
	// The slice is shared and must not be mutated.
	OnRound func(g ids.GroupID, round uint64, deliveries []Delivery)
	// OnTentative enables the optimistic-delivery fast path: when set, the
	// sequencer emits every message of a locally proposed batch as a
	// Tentative Delivery at propose time — in predicted total order, with
	// predicted positions, BEFORE the round's Consensus decision (and its
	// fsync) completes. The prediction is exact in the failure-free common
	// case; it is certified or retracted by OnConfirm/OnRevoke. State
	// machines may speculate on tentative deliveries but must not
	// externalize their effects until the covering OnConfirm — tentative
	// state is volatile and carries none of §2.1's durability guarantees.
	// Like OnDeliver, calls are made in order on the sequencer goroutine.
	OnTentative func(Delivery)
	// OnConfirm certifies the tentative stream: all tentative deliveries
	// of group g with Pos < upToPos matched the agreed order exactly (the
	// authoritative OnDeliver calls for them have already fired, with
	// identical content and positions) and their effects may now be
	// externalized. It fires after the confirming round's OnDeliver calls
	// and only once that round's decision is durable, so confirmation is
	// as strong as the conservative path.
	OnConfirm func(g ids.GroupID, upToPos uint64)
	// OnRevoke retracts the tentative stream: every unconfirmed tentative
	// delivery (all have Pos >= fromPos) was mispredicted — a competing
	// batch won the round, a state transfer skipped it, or positions
	// shifted — and the speculative state built on them must be discarded
	// and rebuilt from the confirmed OnDeliver stream. It fires before the
	// conflicting round's OnDeliver calls. Revoked messages are not lost:
	// they re-enter the Unordered set and are re-delivered (and, with
	// OnTentative, re-predicted) by a later round.
	OnRevoke func(g ids.GroupID, fromPos uint64)
	// Obs, when set, is the process-wide observability plane: protocol
	// counters register under "abcast.core.<name>{group}", sampled
	// per-message lifecycle spans feed the stage-latency histograms, and
	// anomalies (payload stalls, state transfers, tentative revokes,
	// checkpoints) land in the flight recorder. Nil disables all three at
	// the cost of a few nil checks; the plane must outlive incarnations
	// (its counters are process-lifetime monotonic — Stats() subtracts an
	// incarnation baseline).
	Obs *obs.Plane

	// FloorSelf, when set, makes every periodic gossip piggyback a merge-
	// floor frame: the process-wide merge frontier (how far this process has
	// consumed the merged cross-group sequence), the topology epoch it was
	// computed under, and the encoded topology itself. Peers feed the frames
	// to a group.FloorTracker; the cluster-wide minimum (bounded by a
	// staleness cap) then drives MergeFloor, so checkpoint folds and WAL
	// compaction wait for the slowest live consumer instead of forcing a
	// GC-triggered state transfer onto it. Called outside the protocol lock.
	FloorSelf func() (floor uint64, epoch uint64, topo []byte)
	// OnPeerFloor, when set with FloorSelf, receives the merge-floor frames
	// piggybacked by peers (same gossip lane as digests). Called on the
	// transport's delivery goroutine; it must not call back into the
	// Protocol.
	OnPeerFloor func(from ids.ProcessID, floor uint64, epoch uint64, topo []byte)

	// OnRoundSkip, when set, is invoked when a state-transfer adoption
	// (§5.3, including the GC-forced transfer a recovering process
	// receives when it fell below a peer's collection floor) moves the
	// round counter to nextRound without committing the rounds in
	// between: their per-round structure was folded away at the sender
	// and will never reach OnRound. Streaming merge consumers use it to
	// detect that a cursor can no longer be fed (group.Stream.NoteSkip).
	OnRoundSkip func(g ids.GroupID, nextRound uint64)
}

func (c *Config) fill() {
	if c.GossipInterval <= 0 {
		c.GossipInterval = 20 * time.Millisecond
	}
	if c.GossipMaxMessages <= 0 {
		c.GossipMaxMessages = 512
	}
	if c.Dissem != nil {
		// The split's steady-state gossip must be ID-only: payloads travel
		// the ring, digests + pulls repair the holes.
		c.DigestGossip = true
	}
}

// Stats counts protocol events; all fields are cumulative for the
// incarnation.
type Stats struct {
	Rounds              uint64 // consensus instances committed
	EmptyRounds         uint64 // rounds decided with an empty batch
	Delivered           uint64 // messages appended to Agreed
	Broadcasts          uint64 // local A-broadcast invocations
	GossipSent          uint64
	GossipReceived      uint64
	DigestsSent         uint64 // periodic gossips sent as ID digests
	PullsSent           uint64 // pull requests sent for missing payloads
	PullsServed         uint64 // pull requests answered with payloads
	StateSent           uint64 // state messages sent (we were ahead)
	StateSentGCForced   uint64 // state sends forced by the GC floor (peer below DiscardBelow)
	StateAdopted        uint64 // state transfers adopted (we were behind)
	Checkpoints         uint64
	ReplayedRounds      uint64 // rounds re-executed by replay() on recovery
	RecoveredFromCkpt   bool
	RecoveredUnordered  int // unordered messages retrieved on recovery
	ProposalsSubmitted  uint64
	PipelinedProposals  uint64 // proposals submitted for rounds beyond the head
	ProposedMessages    uint64 // messages across all submitted proposals
	DeliveredByTransfer uint64 // messages skipped over via state adoption

	TentativeDeliveries uint64 // optimistic deliveries emitted at propose time
	TentativeConfirmed  uint64 // tentative deliveries certified by OnConfirm
	TentativeRevoked    uint64 // tentative deliveries retracted by OnRevoke
	HeartbeatRounds     uint64 // empty rounds proposed by the idle heartbeat

	RingPublished uint64 // payloads published to the dissemination ring
	PayloadStalls uint64 // commit attempts deferred on a missing payload (ring mode)

	BatchFullSeals  uint64 // proposals sealed by a size cap (MaxBatch/MaxBatchBytes)
	BatchTimerSeals uint64 // non-full proposals sealed by the time trigger (or immediately)
}
