package core

import (
	"repro/internal/ids"
	"repro/internal/obs"
)

// metrics is the protocol's counter set, backed by the process's
// observability registry under "abcast.core.<name>{group}". The registry
// (and so every counter) outlives incarnations — counters are monotonic
// for the process lifetime, which is what a Prometheus scrape needs —
// while the Stats() API keeps its documented per-incarnation semantics by
// subtracting the baseline captured at New().
//
// All counters are lock-free atomics, so Stats() snapshots race-clean
// without taking the protocol lock.
type metrics struct {
	rounds              *obs.Counter
	emptyRounds         *obs.Counter
	delivered           *obs.Counter
	broadcasts          *obs.Counter
	gossipSent          *obs.Counter
	gossipReceived      *obs.Counter
	digestsSent         *obs.Counter
	pullsSent           *obs.Counter
	pullsServed         *obs.Counter
	stateSent           *obs.Counter
	stateSentGCForced   *obs.Counter
	stateAdopted        *obs.Counter
	checkpoints         *obs.Counter
	replayedRounds      *obs.Counter
	proposalsSubmitted  *obs.Counter
	pipelinedProposals  *obs.Counter
	proposedMessages    *obs.Counter
	deliveredByTransfer *obs.Counter
	tentativeDeliveries *obs.Counter
	tentativeConfirmed  *obs.Counter
	tentativeRevoked    *obs.Counter
	heartbeatRounds     *obs.Counter
	ringPublished       *obs.Counter
	payloadStalls       *obs.Counter
	batchFullSeals      *obs.Counter
	batchTimerSeals     *obs.Counter

	base Stats // counter values at incarnation start
}

func newMetrics(reg *obs.Registry, g ids.GroupID) *metrics {
	c := func(name string) *obs.Counter {
		return reg.Counter(obs.GroupLabel("abcast.core."+name, g))
	}
	m := &metrics{
		rounds:              c("rounds"),
		emptyRounds:         c("empty_rounds"),
		delivered:           c("delivered"),
		broadcasts:          c("broadcasts"),
		gossipSent:          c("gossip_sent"),
		gossipReceived:      c("gossip_received"),
		digestsSent:         c("digests_sent"),
		pullsSent:           c("pulls_sent"),
		pullsServed:         c("pulls_served"),
		stateSent:           c("state_sent"),
		stateSentGCForced:   c("state_sent_gc_forced"),
		stateAdopted:        c("state_adopted"),
		checkpoints:         c("checkpoints"),
		replayedRounds:      c("replayed_rounds"),
		proposalsSubmitted:  c("proposals_submitted"),
		pipelinedProposals:  c("pipelined_proposals"),
		proposedMessages:    c("proposed_messages"),
		deliveredByTransfer: c("delivered_by_transfer"),
		tentativeDeliveries: c("tentative_deliveries"),
		tentativeConfirmed:  c("tentative_confirmed"),
		tentativeRevoked:    c("tentative_revoked"),
		heartbeatRounds:     c("heartbeat_rounds"),
		ringPublished:       c("ring_published"),
		payloadStalls:       c("payload_stalls"),
		batchFullSeals:      c("batch_full_seals"),
		batchTimerSeals:     c("batch_timer_seals"),
	}
	m.base = m.snapshot()
	return m
}

// snapshot reads every counter (process-lifetime values).
func (m *metrics) snapshot() Stats {
	return Stats{
		Rounds:              m.rounds.Value(),
		EmptyRounds:         m.emptyRounds.Value(),
		Delivered:           m.delivered.Value(),
		Broadcasts:          m.broadcasts.Value(),
		GossipSent:          m.gossipSent.Value(),
		GossipReceived:      m.gossipReceived.Value(),
		DigestsSent:         m.digestsSent.Value(),
		PullsSent:           m.pullsSent.Value(),
		PullsServed:         m.pullsServed.Value(),
		StateSent:           m.stateSent.Value(),
		StateSentGCForced:   m.stateSentGCForced.Value(),
		StateAdopted:        m.stateAdopted.Value(),
		Checkpoints:         m.checkpoints.Value(),
		ReplayedRounds:      m.replayedRounds.Value(),
		ProposalsSubmitted:  m.proposalsSubmitted.Value(),
		PipelinedProposals:  m.pipelinedProposals.Value(),
		ProposedMessages:    m.proposedMessages.Value(),
		DeliveredByTransfer: m.deliveredByTransfer.Value(),
		TentativeDeliveries: m.tentativeDeliveries.Value(),
		TentativeConfirmed:  m.tentativeConfirmed.Value(),
		TentativeRevoked:    m.tentativeRevoked.Value(),
		HeartbeatRounds:     m.heartbeatRounds.Value(),
		RingPublished:       m.ringPublished.Value(),
		PayloadStalls:       m.payloadStalls.Value(),
		BatchFullSeals:      m.batchFullSeals.Value(),
		BatchTimerSeals:     m.batchTimerSeals.Value(),
	}
}

// incarnation returns the per-incarnation view: current minus baseline.
func (m *metrics) incarnation() Stats {
	s := m.snapshot()
	b := m.base
	s.Rounds -= b.Rounds
	s.EmptyRounds -= b.EmptyRounds
	s.Delivered -= b.Delivered
	s.Broadcasts -= b.Broadcasts
	s.GossipSent -= b.GossipSent
	s.GossipReceived -= b.GossipReceived
	s.DigestsSent -= b.DigestsSent
	s.PullsSent -= b.PullsSent
	s.PullsServed -= b.PullsServed
	s.StateSent -= b.StateSent
	s.StateSentGCForced -= b.StateSentGCForced
	s.StateAdopted -= b.StateAdopted
	s.Checkpoints -= b.Checkpoints
	s.ReplayedRounds -= b.ReplayedRounds
	s.ProposalsSubmitted -= b.ProposalsSubmitted
	s.PipelinedProposals -= b.PipelinedProposals
	s.ProposedMessages -= b.ProposedMessages
	s.DeliveredByTransfer -= b.DeliveredByTransfer
	s.TentativeDeliveries -= b.TentativeDeliveries
	s.TentativeConfirmed -= b.TentativeConfirmed
	s.TentativeRevoked -= b.TentativeRevoked
	s.HeartbeatRounds -= b.HeartbeatRounds
	s.RingPublished -= b.RingPublished
	s.PayloadStalls -= b.PayloadStalls
	s.BatchFullSeals -= b.BatchFullSeals
	s.BatchTimerSeals -= b.BatchTimerSeals
	return s
}
