package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Stable-storage keys owned by the broadcast layer. The basic protocol
// writes none of them.
const (
	keyCkpt     = "abcast/ckpt"     // (k, Agreed) checkpoint cell (§5.1/§5.2)
	keyUnord    = "abcast/unord"    // full Unordered set cell (§5.4)
	keyUnordLog = "abcast/unordlog" // incremental Unordered log (§5.5)
	keyGCFloor  = "abcast/gcfloor"  // round the last checkpoint discarded below
)

// Protocol is one process's Atomic Broadcast endpoint for one incarnation.
// Create it with New, then Start (which runs the recovery procedure), then
// use Broadcast and the delivery APIs. Stop ends the incarnation.
type Protocol struct {
	cfg Config
	st  storage.Stable
	// ast is the asynchronous view of st: Broadcast's unordered-log write
	// is issued through it and awaited outside the protocol lock, so all
	// concurrent Broadcast callers share one group commit on engines that
	// support it (storage.WAL); synchronous engines resolve eagerly.
	ast  storage.AsyncStable
	cons consensus.API
	net  router.Net

	mu        sync.Mutex
	k         uint64 // current round (next Consensus instance)
	gossipK   uint64 // highest round known decided, via gossip
	unordered *msg.Set
	ds        *deliveryState
	seq       uint64 // local sequence numbers for MsgIDs
	waiters   map[ids.MsgID][]chan struct{}

	pending  *deliveryState // state transfer awaiting adoption
	pendingK uint64
	gcFloor  uint64 // consensus instances below this were discarded

	// Retirement seal (live resharding). Once sealed, Broadcast rejects new
	// messages with ErrSealed and the sequencer proposes only empty batches
	// for rounds up to sealFinal — so the round counter deterministically
	// reaches sealFinal+1 (the drain) and stops. drainedCh closes at the
	// drain; messages admitted before the seal but never ordered by the
	// final round become orphans (TakeOrphans) for the successor group.
	sealed    bool
	sealFinal uint64
	drained   bool
	drainedCh chan struct{}

	// starved, in ring mode, is the decided head round whose commit is
	// deferred because a payload named by its ID vector has not arrived
	// yet (delivery gate). The gossip tick re-pulls its missing payloads
	// until an arrival lets the commit retry succeed or an adoption skips
	// the round.
	starved *starvedRound

	// Pipeline state. inflightRounds holds a cancel func per round with a
	// live decision waiter; inflightMsgs marks unordered messages already
	// inside an in-flight proposal (so later rounds don't re-propose
	// them); pendingSince is the arrival time of the oldest pending (not
	// yet proposed) message, driving the adaptive batching time trigger.
	inflightRounds map[uint64]context.CancelFunc
	inflightMsgs   map[ids.MsgID]uint64
	pendingSince   time.Time
	resCh          chan roundResult

	// Live hot-path knobs (internal/tune moves them at runtime; everything
	// else reads the static Config). Atomics because the sequencer reads
	// depth outside the protocol lock; maxDepth bounds live resizes — the
	// decision channel is sized for it at New.
	liveDepth      atomic.Int32
	liveBatchDelay atomic.Int64 // nanoseconds
	maxDepth       int

	// Optimistic-delivery state (Config.OnTentative). tentative holds, in
	// round order, the predictions emitted at propose time and not yet
	// settled by a committed round; tentNextPos is the position the next
	// prediction starts at (the delivery frontier plus every outstanding
	// prediction). Volatile: a recovery starts with no predictions.
	tentative   []tentRound
	tentNextPos uint64
	// lastProgress is when the last round committed (or the incarnation
	// started); the idle-heartbeat deadline is measured from it.
	lastProgress time.Time

	lastStateTo  map[ids.ProcessID]time.Time // state-message rate limiting
	lastGossip   time.Time                   // eager-gossip rate limiting
	eagerBuf     []msg.Message               // locally added messages awaiting a delta gossip
	flushArmed   bool                        // a deferred eager-gossip flush is scheduled
	gossipCursor int                         // rotating window start for truncated gossip
	lastPull     map[ids.MsgID]time.Time     // pull dedup: all peers advertise the same IDs

	// met holds the atomic counter set (registry-backed when Config.Obs is
	// set); tr and fl are the sampled lifecycle tracer and the anomaly
	// flight recorder (nil-safe). recoveredFromCkpt/recoveredUnordered are
	// the two genuinely per-incarnation Stats fields.
	met                *metrics
	tr                 *obs.Tracer
	fl                 *obs.Recorder
	recoveredFromCkpt  atomic.Bool
	recoveredUnordered atomic.Int64

	ctx     context.Context
	cancel  context.CancelFunc
	wake    chan struct{} // capacity 1: pokes the sequencer
	ckptCh  chan struct{} // capacity 1: pokes the checkpoint task
	wg      sync.WaitGroup
	started bool
	stopped bool
}

// New creates a Protocol. st is the process's stable storage, cons the
// consensus building block, net the router binding for the core channel.
// Register OnMessage with the router before calling Start.
func New(cfg Config, st storage.Stable, cons consensus.API, net router.Net) *Protocol {
	cfg.fill()
	depth := cfg.PipelineDepth
	if depth < 1 {
		depth = 1
	}
	maxDepth := depth
	if cfg.MaxPipelineDepth > maxDepth {
		maxDepth = cfg.MaxPipelineDepth
	}
	p := &Protocol{
		cfg:            cfg,
		st:             st,
		ast:            storage.Async(st),
		cons:           cons,
		net:            net,
		met:            newMetrics(cfg.Obs.Reg(), cfg.Group),
		tr:             cfg.Obs.Trace(),
		fl:             cfg.Obs.Flight(),
		unordered:      msg.NewSet(),
		ds:             newDeliveryState(),
		waiters:        make(map[ids.MsgID][]chan struct{}),
		lastStateTo:    make(map[ids.ProcessID]time.Time),
		lastPull:       make(map[ids.MsgID]time.Time),
		inflightRounds: make(map[uint64]context.CancelFunc),
		inflightMsgs:   make(map[ids.MsgID]uint64),
		resCh:          make(chan roundResult, maxDepth+1),
		drainedCh:      make(chan struct{}),
		wake:           make(chan struct{}, 1),
		ckptCh:         make(chan struct{}, 1),
		maxDepth:       maxDepth,
	}
	p.liveDepth.Store(int32(depth))
	p.liveBatchDelay.Store(int64(cfg.MaxBatchDelay))
	return p
}

// Start runs the paper's "upon initialization or recovery" procedure:
// retrieve logged state, replay logged Consensus instances, then fork the
// sequencer, gossip and checkpoint tasks. It blocks until the replay phase
// completes (so its return marks the end of recovery).
func (p *Protocol) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("core: already started")
	}
	p.started = true
	p.mu.Unlock()

	p.ctx, p.cancel = context.WithCancel(ctx)

	if err := p.recover(); err != nil {
		return err
	}

	p.mu.Lock()
	p.lastProgress = time.Now()
	p.tentNextPos = p.ds.nextPos()
	p.mu.Unlock()

	p.wg.Add(2)
	go p.sequencerTask()
	go p.gossipTask()
	if p.cfg.CheckpointEvery > 0 {
		p.wg.Add(1)
		go p.checkpointTask()
	}
	return nil
}

// Stop ends the incarnation: tasks stop, pending Broadcast calls return
// ErrStopped. The stable storage is untouched.
func (p *Protocol) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	if p.cancel != nil {
		p.cancel()
	}
	p.wg.Wait()
}

// recover implements retrieve + replay (Fig. 2 / Fig. 3).
func (p *Protocol) recover() error {
	// retrieve (k_p, Agreed_p) — present only if the alternative
	// protocol's checkpoint task (or a past state-transfer adoption)
	// logged it.
	raw, hasCkpt, err := p.st.Get(keyCkpt)
	if err != nil {
		return fmt.Errorf("core: retrieve checkpoint: %w", err)
	}
	if !hasCkpt {
		// The delivery sequence restarts from ⊥: tell the application
		// to reset to its initial state before the replay phase
		// re-delivers the history (otherwise re-deliveries would be
		// applied on top of stale pre-crash state).
		if cb := p.cfg.OnRestore; cb != nil {
			cb(Snapshot{VC: p.ds.base.VC.Clone()})
		}
	} else {
		r := wire.NewReader(raw)
		k := r.U64()
		ds := decodeDeliveryState(r)
		if ds == nil || r.Done() != nil {
			return fmt.Errorf("core: corrupt checkpoint cell")
		}
		// The checkpoint task discarded Consensus state below the floor
		// it persisted alongside the cell; without one (a cell written
		// before floors existed, or an adoption) assume the worst case —
		// everything below k is gone.
		gcFloor := k
		if fraw, ok, err := p.st.Get(keyGCFloor); err != nil {
			return fmt.Errorf("core: retrieve gc floor: %w", err)
		} else if ok {
			fr := wire.NewReader(fraw)
			if f := fr.U64(); fr.Done() == nil && f < gcFloor {
				gcFloor = f
			}
		}
		p.mu.Lock()
		p.k = k
		p.ds = ds
		p.gcFloor = gcFloor
		p.recoveredFromCkpt.Store(true)
		base := ds.snapshotBase()
		redeliver := p.tagGroup(ds.deliveries())
		restoreCb := p.cfg.OnRestore
		deliverCb := p.cfg.OnDeliver
		skipCb := p.cfg.OnRoundSkip
		p.mu.Unlock()
		if restoreCb != nil {
			restoreCb(base)
		}
		if deliverCb != nil {
			for _, d := range redeliver {
				deliverCb(d)
			}
		}
		if skipCb != nil {
			// Rounds the checkpoint folded will never reach OnRound in
			// this incarnation: announce the jump, exactly like a state-
			// transfer adoption does. Without this a recovered DRAINED
			// group (which commits nothing ever again) would leave the
			// round stream's counter at zero forever.
			skipCb(p.cfg.Group, k)
		}
		// The restored counter is this incarnation's recoverable prefix:
		// re-arm the durable-frontier gossip with it.
		if cb := p.cfg.OnCheckpoint; cb != nil {
			cb(k)
		}
	}

	// retrieve (Unordered_p) — present only with BatchedBroadcast.
	if p.cfg.BatchedBroadcast {
		if err := p.recoverUnordered(); err != nil {
			return err
		}
	}

	// replay (): the recovery procedure "parses the log of proposed and
	// agreed values (which is kept internally by Consensus)" (§4.2).
	// Rounds with a logged decision are committed straight from the log;
	// a round with only a logged proposal is re-proposed idempotently
	// and awaited. Re-deliveries reconstruct the Agreed queue.
	replayed := uint64(0)
	for {
		p.mu.Lock()
		k := p.k
		p.mu.Unlock()
		if res, ok := p.cons.DecidedLocal(k); ok {
			if !p.commit(k, res) {
				// Ring mode: the round's ID vector names a payload this
				// process never held locally (it was relayed, not logged).
				// Replay cannot finish the round — stop here; once the
				// tasks fork, the digest/pull exchange fetches the payload
				// and the sequencer commits the remaining logged rounds.
				break
			}
			replayed++
			continue
		}
		prop, ok := p.cons.Proposal(k)
		if !ok {
			break
		}
		if err := p.cons.Propose(k, prop); err != nil {
			if errors.Is(err, consensus.ErrDiscarded) {
				break
			}
			return fmt.Errorf("core: replay propose %d: %w", k, err)
		}
		res, err := p.cons.WaitDecided(p.ctx, k)
		if errors.Is(err, consensus.ErrDiscarded) {
			// Peers garbage-collected this instance: replay cannot
			// finish it. Stop here — once the tasks fork, the
			// gossip exchange triggers a state transfer that skips
			// over the missing rounds (§5.3).
			break
		}
		if err != nil {
			return fmt.Errorf("core: replay wait %d: %w", k, err)
		}
		if !p.commit(k, res) {
			break // ring mode: payload-starved; repaired after the tasks fork
		}
		replayed++
	}
	p.mu.Lock()
	p.met.replayedRounds.Add(replayed)
	p.mu.Unlock()
	return nil
}

// recoverUnordered restores the Unordered set from the full cell plus the
// incremental log (§5.4/§5.5).
func (p *Protocol) recoverUnordered() error {
	recovered := 0
	if raw, ok, err := p.st.Get(keyUnord); err != nil {
		return fmt.Errorf("core: retrieve unordered: %w", err)
	} else if ok {
		r := wire.NewReader(raw)
		set := msg.DecodeSet(r)
		if r.Done() != nil {
			return fmt.Errorf("core: corrupt unordered cell")
		}
		p.mu.Lock()
		for _, m := range set.Slice() {
			if !p.ds.contains(m.ID) && p.unordered.Add(m) {
				recovered++
			}
			if m.ID.Sender == p.cfg.PID && m.ID.Seq > p.seq {
				p.seq = m.ID.Seq
			}
		}
		p.mu.Unlock()
	}
	recs, err := p.st.Records(keyUnordLog)
	if err != nil {
		return fmt.Errorf("core: read unordered log: %w", err)
	}
	p.mu.Lock()
	for _, rec := range recs {
		r := wire.NewReader(rec)
		m := msg.DecodeMessage(r)
		if r.Done() != nil {
			continue // torn/corrupt record: treated as never logged
		}
		if !p.ds.contains(m.ID) && p.unordered.Add(m) {
			recovered++
		}
		if m.ID.Sender == p.cfg.PID && m.ID.Seq > p.seq {
			p.seq = m.ID.Seq
		}
	}
	p.recoveredUnordered.Store(int64(recovered))
	if recovered > 0 {
		p.notePendingLocked()
	}
	p.mu.Unlock()
	return nil
}

// Broadcast implements A-broadcast(m). In the basic protocol it blocks
// until m is in the Agreed queue ("A-broadcast(m) does not return until the
// message m is in the agreed queue", §4.2). With BatchedBroadcast it logs
// the Unordered set and returns immediately (§5.4).
func (p *Protocol) Broadcast(ctx context.Context, payload []byte) (ids.MsgID, error) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return ids.MsgID{}, ErrStopped
	}
	if p.sealed {
		// Rejected at entry: nothing was admitted, so the caller re-routes
		// the payload (with a fresh identity) to the successor group.
		p.mu.Unlock()
		return ids.MsgID{}, ErrSealed
	}
	p.seq++
	m := msg.Message{
		ID:      ids.MsgID{Sender: p.cfg.PID, Incarnation: p.cfg.Incarnation, Seq: p.seq},
		Payload: append([]byte(nil), payload...),
	}
	p.unordered.Add(m)
	if p.cfg.Dissem == nil {
		p.eagerBuf = append(p.eagerBuf, m)
	} else {
		p.met.ringPublished.Inc()
	}
	p.notePendingLocked()
	p.met.broadcasts.Inc()
	p.tr.Mark(m.ID, obs.StBroadcast)

	if p.cfg.BatchedBroadcast {
		// Issue the Unordered log write under the lock (so records hit
		// the log in Unordered-set order) but wait for durability outside
		// it: on a group-commit engine every concurrent Broadcast shares
		// one fsync, and the sequencer/gossip may already work on m in
		// the meantime — safe, because until Broadcast returns, m "may
		// or may have not been A-broadcast" (§4.2).
		var c *storage.Completion
		if p.cfg.IncrementalLog {
			w := wire.NewWriter(16 + len(m.Payload))
			m.Encode(w)
			c = p.ast.AppendAsync(keyUnordLog, w.Bytes())
		} else {
			w := wire.NewWriter(64)
			p.unordered.Encode(w)
			c = p.ast.PutAsync(keyUnord, w.Bytes())
		}
		p.mu.Unlock()
		p.poke()
		p.disseminate(m)
		if err := c.Wait(); err != nil {
			// The log write failed (the incarnation is dying), but m is
			// already in the volatile Unordered set and may have been
			// gossiped: like a crash inside A-broadcast, m "may or may
			// have not been A-broadcast" — return its identity so the
			// caller can track the outcome.
			return m.ID, fmt.Errorf("core: log unordered: %w", err)
		}
		return m.ID, nil
	}

	ch := make(chan struct{})
	p.waiters[m.ID] = append(p.waiters[m.ID], ch)
	p.mu.Unlock()
	p.poke()
	p.disseminate(m)

	select {
	case <-ch:
		return m.ID, nil
	case <-p.drainedCh:
		// The group sealed and drained while we waited. If the final rounds
		// ordered m it is delivered here; otherwise it is now an orphan the
		// resharding layer re-injects (same MsgID) into the successor group —
		// either way the caller's outcome is "may have been A-broadcast",
		// the same as a crash mid-call.
		if p.Delivered(m.ID) {
			return m.ID, nil
		}
		return m.ID, ErrSealed
	case <-ctx.Done():
		return m.ID, ctx.Err()
	case <-p.ctx.Done():
		return m.ID, ErrStopped
	}
}

// BroadcastAsync adds m to the Unordered set and returns at once without
// any delivery guarantee for this incarnation (the caller behaves as if it
// might crash immediately after invoking A-broadcast). Load generators use
// it to drive open-loop workloads.
func (p *Protocol) BroadcastAsync(payload []byte) (ids.MsgID, error) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return ids.MsgID{}, ErrStopped
	}
	if p.sealed {
		p.mu.Unlock()
		return ids.MsgID{}, ErrSealed
	}
	p.seq++
	m := msg.Message{
		ID:      ids.MsgID{Sender: p.cfg.PID, Incarnation: p.cfg.Incarnation, Seq: p.seq},
		Payload: append([]byte(nil), payload...),
	}
	p.unordered.Add(m)
	if p.cfg.Dissem == nil {
		p.eagerBuf = append(p.eagerBuf, m)
	} else {
		p.met.ringPublished.Inc()
	}
	p.notePendingLocked()
	p.met.broadcasts.Inc()
	p.tr.Mark(m.ID, obs.StBroadcast)
	p.mu.Unlock()
	p.poke()
	p.disseminate(m)
	return m.ID, nil
}

// ringMode reports whether this protocol runs the ordering/dissemination
// split (consensus values are ID vectors, payloads travel the ring).
func (p *Protocol) ringMode() bool { return p.cfg.Dissem != nil }

// disseminate pushes a locally added message towards the other processes:
// the ring publisher in ring mode, the eager delta gossip otherwise.
func (p *Protocol) disseminate(m msg.Message) {
	if d := p.cfg.Dissem; d != nil {
		d.Publish(m)
		return
	}
	p.eagerGossip()
}

// AddDisseminated ingests one payload from the dissemination plane (the
// ring sink). It reports whether the message was new here — the ring
// forwards a relay frame to the successor only when it is.
func (p *Protocol) AddDisseminated(m msg.Message) bool {
	p.mu.Lock()
	if p.stopped || p.drained || p.ds.contains(m.ID) {
		// Drained: the sealed sequence is complete; late payloads belong to
		// the orphan re-injection path, not this group's Unordered set.
		p.mu.Unlock()
		return false
	}
	added := p.unordered.Add(m)
	if added {
		p.notePendingLocked()
	}
	p.mu.Unlock()
	if added {
		p.tr.Mark(m.ID, obs.StPayloadArrive)
		// New pending work — and possibly the payload a starved round is
		// waiting on: wake the sequencer either way.
		p.poke()
	}
	return added
}

// starvedRound is a decided round whose commit is deferred by the delivery
// gate: its ID vector names payloads not yet held locally.
type starvedRound struct {
	round uint64
	recs  []msg.IDRec
}

// resolvePayloads implements the ring-mode delivery gate "ID ordered ∧
// payload present": it maps a decided ID vector to the locally held
// payloads. If every needed payload is present (and matches its checksum)
// the batch is returned ready to commit; otherwise the round is parked as
// starved, a targeted pull for the missing payloads is multisent over the
// digest-gossip repair path, and ok=false tells the caller not to advance
// the delivery cursor. A held payload failing its checksum is dropped from
// Unordered (Set.Add keeps the first payload for an ID, so the corrupt one
// would otherwise block the true bytes forever) and treated as missing.
func (p *Protocol) resolvePayloads(round uint64, recs []msg.IDRec) ([]msg.Message, bool) {
	p.mu.Lock()
	batch := make([]msg.Message, 0, len(recs))
	now := time.Now()
	missing := 0
	var pull []ids.MsgID
	for _, rec := range recs {
		if p.ds.contains(rec.ID) {
			continue // already delivered: appendBatch would skip it
		}
		m, ok := p.unordered.Get(rec.ID)
		if ok && msg.Checksum(m.Payload) != rec.Sum {
			p.unordered.Remove(rec.ID)
			ok = false
		}
		if !ok {
			missing++
			// Same per-message pull rate limit as the digest path: all
			// retries within one gossip interval coalesce.
			if t, seen := p.lastPull[rec.ID]; !seen || now.Sub(t) >= p.cfg.GossipInterval {
				p.lastPull[rec.ID] = now
				pull = append(pull, rec.ID)
			}
			continue
		}
		batch = append(batch, m)
	}
	if missing == 0 {
		p.starved = nil
		p.mu.Unlock()
		return batch, true
	}
	// Count the stall (and record the anomaly) only when the round first
	// parks: the sequencer retries the same starved round on every wake,
	// and an unguarded increment would count one stall once per retry.
	if p.starved == nil || p.starved.round != round {
		p.met.payloadStalls.Inc()
		p.fl.Event(obs.EvPayloadStall, p.cfg.Group, round, int64(missing), 0, "")
	}
	p.starved = &starvedRound{round: round, recs: recs}
	if len(pull) > 0 {
		p.met.pullsSent.Inc()
	}
	p.mu.Unlock()
	if len(pull) > 0 {
		w := wire.GetWriter(64)
		w.U8(subPull)
		msg.EncodeIDs(w, pull)
		p.net.Multisend(w.Bytes())
		wire.PutWriter(w)
	}
	return nil, false
}

// commit finishes round: the decided batch is appended to Agreed by the
// deterministic rule, the round counter advances, and ordered messages
// leave the Unordered set. Deliveries run on the caller's goroutine (the
// sequencer or the recovery procedure), preserving order. In ring mode the
// decided value is an ID vector and the commit is gated on payload
// presence: false means the round is parked until the missing payloads
// arrive (the caller must retry the same round later).
func (p *Protocol) commit(round uint64, result []byte) bool {
	r := wire.NewReader(result)
	var batch []msg.Message
	if p.ringMode() {
		recs := msg.DecodeIDVec(r)
		var ok bool
		if batch, ok = p.resolvePayloads(round, recs); !ok {
			return false
		}
	} else {
		batch = msg.DecodeBatch(r)
	}

	p.mu.Lock()
	deliveries := p.tagGroup(p.ds.appendBatch(round, batch))
	p.k = round + 1
	p.unordered.SubtractDelivered(p.ds.contains)
	// Messages we proposed in rounds up to this one are settled: either
	// delivered (gone from Unordered) or lost to a competing batch, in
	// which case they become pending again and a later round re-proposes
	// them.
	leftover := false
	for id, r := range p.inflightMsgs {
		if r <= round {
			delete(p.inflightMsgs, id)
			if p.unordered.Contains(id) {
				leftover = true
			}
		}
	}
	if leftover {
		p.notePendingLocked()
	}
	if p.unordered.Len() == 0 {
		// The pool drained (possibly via remotely decided batches): a
		// stale pendingSince would defeat the next batch's time trigger.
		p.pendingSince = time.Time{}
	}
	for _, d := range deliveries {
		p.notifyWaitersLocked(d.Msg.ID)
	}
	p.met.rounds.Inc()
	if len(batch) == 0 {
		p.met.emptyRounds.Inc()
	}
	p.met.delivered.Add(uint64(len(deliveries)))
	p.lastProgress = time.Now()
	if p.sealed && !p.drained && p.k >= p.sealFinal+1 {
		// The final round committed: the retiring group's sequence is
		// complete. Waiting Broadcast callers resolve via drainedCh and
		// whatever is left unordered is the orphan set.
		p.drained = true
		close(p.drainedCh)
	}
	confirmTo, confirmN, revokeFrom, revoked := p.settleTentativeLocked(round, deliveries)
	ckptDue := p.cfg.CheckpointEvery > 0 && p.k%uint64(p.cfg.CheckpointEvery) == 0
	deliverCb := p.cfg.OnDeliver
	roundCb := p.cfg.OnRound
	confirmCb := p.cfg.OnConfirm
	revokeCb := p.cfg.OnRevoke
	p.mu.Unlock()

	if p.tr != nil {
		// Close the sampled lifecycle spans: fold the round-scoped
		// consensus stamps in, then stamp delivery. A round that exactly
		// confirmed its prediction ends at StConfirm, otherwise StDeliver.
		mids := make([]ids.MsgID, len(deliveries))
		for i, d := range deliveries {
			mids[i] = d.Msg.ID
		}
		p.tr.FoldRound(p.cfg.Group, round, mids)
		final := obs.StDeliver
		if confirmN > 0 {
			final = obs.StConfirm
		}
		for _, id := range mids {
			p.tr.Mark(id, obs.StDeliver)
			p.tr.Finish(id, final)
		}
	}

	if revoked && revokeCb != nil {
		// Before this round's OnDeliver calls: the speculative suffix must
		// be gone before the authoritative stream delivers the round that
		// contradicted it.
		revokeCb(p.cfg.Group, revokeFrom)
	}
	if deliverCb != nil {
		for _, d := range deliveries {
			deliverCb(d)
		}
	}
	if roundCb != nil {
		// After OnDeliver (per-message consumers stay ahead of per-round
		// ones) and before the checkpoint trigger, so a merge frontier
		// driven by these events has seen every round a checkpoint
		// triggered here may fold under.
		roundCb(p.cfg.Group, round, deliveries)
	}
	if confirmN > 0 && confirmCb != nil {
		// After the round's OnDeliver calls: the authoritative deliveries
		// the confirmation certifies have already fired.
		confirmCb(p.cfg.Group, confirmTo)
	}
	if ckptDue {
		select {
		case p.ckptCh <- struct{}{}:
		default:
		}
	}
	return true
}

// tagGroup stamps the protocol's owning group on deliveries about to
// leave the core (OnDeliver callbacks, Sequence). Every emission path
// must pass through it — a sharded process's shared handler keys on
// Delivery.Group to tell its groups apart.
func (p *Protocol) tagGroup(ds []Delivery) []Delivery {
	for i := range ds {
		ds[i].Group = p.cfg.Group
	}
	return ds
}

// tentRound is one outstanding optimistic prediction: the messages of a
// locally proposed batch, emitted as tentative deliveries, with from the
// predicted position of the first one.
type tentRound struct {
	round uint64
	ids   []ids.MsgID
	from  uint64
}

// tentMatch reports whether a committed round's deliveries are exactly the
// predicted ones, in the predicted order at the predicted positions.
func tentMatch(t tentRound, deliveries []Delivery) bool {
	if len(deliveries) != len(t.ids) {
		return false
	}
	for i, d := range deliveries {
		if d.Msg.ID != t.ids[i] || d.Pos != t.from+uint64(i) {
			return false
		}
	}
	return true
}

// settleTentativeLocked settles the oldest outstanding prediction against
// the round that just committed. Exactly one of three things happens: the
// round matches the prediction (confirm it), the round conflicts with it (a
// competing batch won, or an unpredicted round delivered messages and
// shifted every predicted position — revoke all predictions, since the
// later ones were built on the mispredicted ones), or the round was not
// predicted and delivered nothing (the predictions still hold). p.mu held.
func (p *Protocol) settleTentativeLocked(round uint64, deliveries []Delivery) (confirmTo uint64, confirmN int, revokeFrom uint64, revoked bool) {
	if len(p.tentative) == 0 {
		p.tentNextPos = p.ds.nextPos()
		return
	}
	t := p.tentative[0]
	switch {
	case t.round == round && tentMatch(t, deliveries):
		p.tentative = p.tentative[1:]
		confirmN = len(t.ids)
		confirmTo = t.from + uint64(len(t.ids))
		p.met.tentativeConfirmed.Add(uint64(confirmN))
	case t.round == round || len(deliveries) > 0:
		revoked = true
		revokeFrom = t.from
		n := 0
		for _, tr := range p.tentative {
			p.met.tentativeRevoked.Add(uint64(len(tr.ids)))
			n += len(tr.ids)
		}
		p.fl.Event(obs.EvTentativeRevoke, p.cfg.Group, round, int64(n), int64(revokeFrom), "competing batch won")
		p.tentative = nil
	}
	if len(p.tentative) == 0 {
		p.tentNextPos = p.ds.nextPos()
	}
	return
}

// revokeAllTentativeLocked drops every outstanding prediction (state
// transfer adoption, where the agreed sequence jumps past the predicted
// rounds). It returns whether OnRevoke must fire and from which position.
// p.mu held; the caller fires the callback after unlocking.
func (p *Protocol) revokeAllTentativeLocked() (fromPos uint64, revoked bool) {
	if len(p.tentative) > 0 {
		revoked = true
		fromPos = p.tentative[0].from
		n := 0
		for _, tr := range p.tentative {
			p.met.tentativeRevoked.Add(uint64(len(tr.ids)))
			n += len(tr.ids)
		}
		p.fl.Event(obs.EvTentativeRevoke, p.cfg.Group, p.k, int64(n), int64(fromPos), "state transfer adoption")
		p.tentative = nil
	}
	p.tentNextPos = p.ds.nextPos()
	return
}

// notePendingLocked records the arrival of a pending (not yet proposed)
// unordered message for the adaptive batching time trigger. p.mu held.
func (p *Protocol) notePendingLocked() {
	if p.pendingSince.IsZero() {
		p.pendingSince = time.Now()
	}
}

// notifyWaitersLocked releases Broadcast callers waiting on id. p.mu held.
func (p *Protocol) notifyWaitersLocked(id ids.MsgID) {
	if chans, ok := p.waiters[id]; ok {
		for _, ch := range chans {
			close(ch)
		}
		delete(p.waiters, id)
	}
}

// poke wakes the sequencer.
func (p *Protocol) poke() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Seal marks the group as retiring with final round `final`: Broadcast
// rejects new messages with ErrSealed from now on, and the sequencer
// proposes only empty batches for the remaining rounds [k, final], so every
// process's round counter deterministically reaches final+1 and stops. The
// caller learns `final` from the SEAL marker ordered in the group itself
// (final = marker round + drain window), so all processes seal at the same
// boundary. Idempotent; a smaller final than an earlier seal is ignored.
func (p *Protocol) Seal(final uint64) {
	p.mu.Lock()
	if p.sealed {
		p.mu.Unlock()
		return
	}
	p.sealed = true
	p.sealFinal = final
	if !p.drained && p.k >= final+1 {
		// Already past the boundary (a restart re-applying the seal, or a
		// state adoption that jumped the counter).
		p.drained = true
		close(p.drainedCh)
	}
	p.mu.Unlock()
	p.poke() // the sequencer's batch-delay hold no longer applies
}

// Sealed returns the retirement seal state: whether Seal was applied and,
// if so, the final round of the sealed sequence.
func (p *Protocol) Sealed() (bool, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sealed, p.sealFinal
}

// Drained reports whether a sealed group has committed its full sequence
// (round counter past the final round). Always false before Seal.
func (p *Protocol) Drained() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drained
}

// DrainedChan returns a channel closed when the sealed group drains (never,
// for an unsealed group). The resharding layer waits on it to bound the
// drain window.
func (p *Protocol) DrainedChan() <-chan struct{} {
	return p.drainedCh
}

// TakeOrphans removes and returns the messages left in the Unordered set
// after a sealed group drained: admitted before the seal but never ordered
// by the final rounds. The resharding layer re-injects them — same MsgID —
// into the successor group, where delivery-state dedup keeps the injection
// idempotent across the processes all doing the same. Nil until the drain.
func (p *Protocol) TakeOrphans() []msg.Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.drained {
		return nil
	}
	orphans := p.unordered.Slice()
	if len(orphans) == 0 {
		return nil
	}
	out := make([]msg.Message, len(orphans))
	copy(out, orphans)
	for _, m := range out {
		p.unordered.Remove(m.ID)
	}
	return out
}

// Round returns the current round counter k_p.
func (p *Protocol) Round() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.k
}

// Delivered reports whether id is in the delivery sequence (explicitly or
// via the base checkpoint).
func (p *Protocol) Delivered(id ids.MsgID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ds.contains(id)
}

// DeliveredTentative reports whether id is in the delivery sequence or in
// an outstanding optimistic prediction (tentatively delivered but not yet
// confirmed). Like Delivery.Tentative itself, a true answer obtained only
// through a prediction carries no durability guarantee.
func (p *Protocol) DeliveredTentative(id ids.MsgID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ds.contains(id) {
		return true
	}
	for _, t := range p.tentative {
		for _, tid := range t.ids {
			if tid == id {
				return true
			}
		}
	}
	return false
}

// Sequence implements A-deliver-sequence(): it returns the base snapshot
// that initiates the sequence (empty in the basic protocol) and the
// explicitly delivered suffix.
func (p *Protocol) Sequence() (Snapshot, []Delivery) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ds.snapshotBase(), p.tagGroup(p.ds.deliveries())
}

// UnorderedLen returns the size of the Unordered set (observability).
func (p *Protocol) UnorderedLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.unordered.Len()
}

// Stats returns a snapshot of the protocol counters for this incarnation.
// The read is lock-free (every counter is an atomic), so it is safe to call
// from delivery callbacks and concurrently with delivery itself.
func (p *Protocol) Stats() Stats {
	s := p.met.incarnation()
	s.RecoveredFromCkpt = p.recoveredFromCkpt.Load()
	s.RecoveredUnordered = int(p.recoveredUnordered.Load())
	return s
}
