package group

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
)

// emptySeqs is the subscription snapshot of a process with no history yet.
func emptySeqs(groups int) func() ([]Sequence, error) {
	return func() ([]Sequence, error) {
		out := make([]Sequence, groups)
		for g := range out {
			out[g] = Sequence{Group: ids.GroupID(g)}
		}
		return out, nil
	}
}

// collect reads n deliveries from the push channel or fails the test.
func collect(t *testing.T, p *PushCursor, n int) []core.Delivery {
	t.Helper()
	var out []core.Delivery
	timeout := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case d, ok := <-p.C():
			if !ok {
				t.Fatalf("push channel closed after %d/%d deliveries (err=%v)", len(out), n, p.Err())
			}
			out = append(out, d)
		case <-timeout:
			t.Fatalf("timed out after %d/%d deliveries", len(out), n)
		}
	}
	return out
}

// TestPushCursorMatchesPollOrder feeds the same round events to a poll
// cursor and a push subscription; the channel must yield the byte-identical
// merge order the poll cursor returns.
func TestPushCursorMatchesPollOrder(t *testing.T) {
	const groups = 3
	st := NewStream(groups)
	poll, err := st.Subscribe(emptySeqs(groups))
	if err != nil {
		t.Fatal(err)
	}
	push, err := st.SubscribePush(emptySeqs(groups), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()

	var seq uint64
	var want int
	for r := uint64(0); r < 8; r++ {
		for g := 0; g < groups; g++ {
			var ds []core.Delivery
			if (int(r)+g)%3 != 0 { // leave some rounds empty
				seq++
				ds = []core.Delivery{histDel(ids.GroupID(g), seq, r, seq, byte(g))}
				want++
			}
			st.NoteRound(ids.GroupID(g), r, ds)
		}
	}

	got := collect(t, push, want)
	ref, err := poll.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != want {
		t.Fatalf("poll cursor returned %d deliveries, want %d", len(ref), want)
	}
	for i := range ref {
		if !deliveryIdentical(ref[i], got[i]) {
			t.Fatalf("delivery %d: push %+v != poll %+v", i, got[i], ref[i])
		}
	}
}

// TestPushCursorBackpressureLosesNothing jams the consumer while rounds
// keep committing: the bounded channel fills, the adapter blocks, and once
// the consumer resumes every delivery arrives in order — backpressure
// stalls the drain, it never drops.
func TestPushCursorBackpressureLosesNothing(t *testing.T) {
	const buf = 2
	st := NewStream(1)
	push, err := st.SubscribePush(emptySeqs(1), buf)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()

	const total = 50
	for r := uint64(0); r < total; r++ {
		st.NoteRound(0, r, []core.Delivery{histDel(0, r+1, r, r, 0xaa)})
	}
	// With nobody reading, the adapter can hand over at most the channel
	// capacity (plus the one send it is blocked in).
	deadline := time.Now().Add(5 * time.Second)
	for len(push.C()) < buf && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(push.C()); got != buf {
		t.Fatalf("channel holds %d deliveries, want a full buffer of %d", got, buf)
	}

	got := collect(t, push, total)
	for i, d := range got {
		if d.Round != uint64(i) {
			t.Fatalf("delivery %d has round %d; reordered or dropped under backpressure", i, d.Round)
		}
	}
}

// TestPushCursorCloseIsClean asserts the Close path: channel closes, Err
// stays nil, Close is idempotent.
func TestPushCursorCloseIsClean(t *testing.T) {
	st := NewStream(1)
	push, err := st.SubscribePush(emptySeqs(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	st.NoteRound(0, 0, []core.Delivery{histDel(0, 1, 0, 0, 1)})
	collect(t, push, 1)
	push.Close()
	push.Close() // idempotent
	select {
	case _, ok := <-push.C():
		if ok {
			t.Fatal("delivery after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel never closed after Close")
	}
	if err := push.Err(); err != nil {
		t.Fatalf("Err after clean Close = %v, want nil", err)
	}
}

// TestPushCursorLagTerminates asserts the failure path: a state-transfer
// skip the subscription never saw closes the channel with ErrCursorLagged.
func TestPushCursorLagTerminates(t *testing.T) {
	st := NewStream(1)
	push, err := st.SubscribePush(emptySeqs(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()
	st.NoteSkip(0, 10) // rounds 0..9 skipped wholesale
	select {
	case _, ok := <-push.C():
		if ok {
			t.Fatal("unexpected delivery from a lagged subscription")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel never closed after lag")
	}
	if err := push.Err(); !errors.Is(err, ErrCursorLagged) {
		t.Fatalf("Err = %v, want ErrCursorLagged", err)
	}
}
