package group

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
)

func mkDel(g ids.GroupID, sender ids.ProcessID, seq, round uint64) core.Delivery {
	return core.Delivery{
		Msg:   msg.Message{ID: ids.MsgID{Sender: sender, Incarnation: 1, Seq: seq}},
		Group: g,
		Round: round,
	}
}

func TestMergeRoundInterleave(t *testing.T) {
	// g0 decided rounds 0,1,2 (round 1 empty); g1 decided rounds 0,1.
	g0 := Sequence{
		Group:      0,
		Deliveries: []core.Delivery{mkDel(0, 0, 1, 0), mkDel(0, 1, 1, 0), mkDel(0, 0, 2, 2)},
		Rounds:     3,
	}
	g1 := Sequence{
		Group:      1,
		Deliveries: []core.Delivery{mkDel(1, 0, 1, 0), mkDel(1, 2, 1, 1)},
		Rounds:     2,
	}
	merged, rounds, ok := Merge([]Sequence{g1, g0}) // order must not matter
	if !ok {
		t.Fatal("merge not ok")
	}
	if rounds != 2 {
		t.Fatalf("frontier = %d; want 2 (g1 has only decided 2 rounds)", rounds)
	}
	// Round 0: g0's two, then g1's one; round 1: only g1's. g0's round-2
	// delivery is beyond the frontier.
	want := []struct {
		g   ids.GroupID
		seq uint64
	}{{0, 1}, {0, 1}, {1, 1}, {1, 1}}
	if len(merged) != len(want) {
		t.Fatalf("merged %d deliveries; want %d (%v)", len(merged), len(want), merged)
	}
	for i, w := range want {
		if merged[i].Group != w.g {
			t.Fatalf("merged[%d].Group = %v; want %v", i, merged[i].Group, w.g)
		}
	}
	if merged[0].Msg.ID.Sender != 0 || merged[1].Msg.ID.Sender != 1 {
		t.Fatalf("round 0 of g0 out of order: %v", merged[:2])
	}
}

// TestMergeDeterministicPrefix: merges computed from two processes at
// different frontiers agree on the common prefix.
func TestMergeDeterministicPrefix(t *testing.T) {
	// Process A saw fewer rounds of g1 than process B.
	g0 := Sequence{Group: 0, Deliveries: []core.Delivery{mkDel(0, 0, 1, 0), mkDel(0, 0, 2, 1)}, Rounds: 2}
	g1Short := Sequence{Group: 1, Deliveries: []core.Delivery{mkDel(1, 1, 1, 0)}, Rounds: 1}
	g1Long := Sequence{Group: 1, Deliveries: []core.Delivery{mkDel(1, 1, 1, 0), mkDel(1, 1, 2, 1)}, Rounds: 2}

	a, _, ok := Merge([]Sequence{g0, g1Short})
	if !ok {
		t.Fatal("merge a not ok")
	}
	b, _, ok := Merge([]Sequence{g0, g1Long})
	if !ok {
		t.Fatal("merge b not ok")
	}
	if len(a) >= len(b) {
		t.Fatalf("expected a shorter than b: %d vs %d", len(a), len(b))
	}
	if i := VerifyMergePrefix(a, b); i >= 0 {
		t.Fatalf("merges disagree at %d", i)
	}
	// And a genuine disagreement is caught.
	bad := append([]core.Delivery(nil), a...)
	bad[0].Group = 9
	if i := VerifyMergePrefix(bad, b); i != 0 {
		t.Fatalf("VerifyMergePrefix missed the disagreement: %d", i)
	}
}

// TestMergeRefusesFoldedPrefix: a base checkpoint hides rounds, so the
// merge must signal that it cannot reconstruct the interleave.
func TestMergeRefusesFoldedPrefix(t *testing.T) {
	g0 := Sequence{Group: 0, Base: core.Snapshot{Rounds: 2}, Deliveries: []core.Delivery{mkDel(0, 0, 3, 2)}, Rounds: 3}
	g1 := Sequence{Group: 1, Deliveries: []core.Delivery{mkDel(1, 1, 1, 0)}, Rounds: 3}
	if _, _, ok := Merge([]Sequence{g0, g1}); ok {
		t.Fatal("merge accepted a folded prefix")
	}
	// With a zero frontier there is nothing to merge, folded or not.
	if _, rounds, ok := Merge([]Sequence{g0, {Group: 1, Rounds: 0}}); !ok || rounds != 0 {
		t.Fatalf("zero frontier should be ok/empty, got rounds=%d ok=%v", rounds, ok)
	}
}
