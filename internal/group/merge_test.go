package group

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
)

func mkDel(g ids.GroupID, sender ids.ProcessID, seq, round uint64) core.Delivery {
	return core.Delivery{
		Msg:   msg.Message{ID: ids.MsgID{Sender: sender, Incarnation: 1, Seq: seq}},
		Group: g,
		Round: round,
	}
}

func TestMergeRoundInterleave(t *testing.T) {
	// g0 decided rounds 0,1,2 (round 1 empty); g1 decided rounds 0,1.
	g0 := Sequence{
		Group:      0,
		Deliveries: []core.Delivery{mkDel(0, 0, 1, 0), mkDel(0, 1, 1, 0), mkDel(0, 0, 2, 2)},
		Rounds:     3,
	}
	g1 := Sequence{
		Group:      1,
		Deliveries: []core.Delivery{mkDel(1, 0, 1, 0), mkDel(1, 2, 1, 1)},
		Rounds:     2,
	}
	merged, from, rounds := Merge([]Sequence{g1, g0}) // order must not matter
	if from != 0 {
		t.Fatalf("from = %d; want 0 (nothing folded)", from)
	}
	if rounds != 2 {
		t.Fatalf("frontier = %d; want 2 (g1 has only decided 2 rounds)", rounds)
	}
	// Round 0: g0's two, then g1's one; round 1: only g1's. g0's round-2
	// delivery is beyond the frontier.
	want := []struct {
		g   ids.GroupID
		seq uint64
	}{{0, 1}, {0, 1}, {1, 1}, {1, 1}}
	if len(merged) != len(want) {
		t.Fatalf("merged %d deliveries; want %d (%v)", len(merged), len(want), merged)
	}
	for i, w := range want {
		if merged[i].Group != w.g {
			t.Fatalf("merged[%d].Group = %v; want %v", i, merged[i].Group, w.g)
		}
	}
	if merged[0].Msg.ID.Sender != 0 || merged[1].Msg.ID.Sender != 1 {
		t.Fatalf("round 0 of g0 out of order: %v", merged[:2])
	}
}

// TestMergeDeterministicPrefix: merges computed from two processes at
// different frontiers agree on the common prefix.
func TestMergeDeterministicPrefix(t *testing.T) {
	// Process A saw fewer rounds of g1 than process B.
	g0 := Sequence{Group: 0, Deliveries: []core.Delivery{mkDel(0, 0, 1, 0), mkDel(0, 0, 2, 1)}, Rounds: 2}
	g1Short := Sequence{Group: 1, Deliveries: []core.Delivery{mkDel(1, 1, 1, 0)}, Rounds: 1}
	g1Long := Sequence{Group: 1, Deliveries: []core.Delivery{mkDel(1, 1, 1, 0), mkDel(1, 1, 2, 1)}, Rounds: 2}

	a, _, _ := Merge([]Sequence{g0, g1Short})
	b, _, _ := Merge([]Sequence{g0, g1Long})
	if len(a) >= len(b) {
		t.Fatalf("expected a shorter than b: %d vs %d", len(a), len(b))
	}
	if i := VerifyMergePrefix(a, b); i >= 0 {
		t.Fatalf("merges disagree at %d", i)
	}
	// And a genuine disagreement is caught.
	bad := append([]core.Delivery(nil), a...)
	bad[0].Group = 9
	if i := VerifyMergePrefix(bad, b); i != 0 {
		t.Fatalf("VerifyMergePrefix missed the disagreement: %d", i)
	}
}

// TestMergeFoldedPrefix: a base checkpoint hides rounds below it; the
// merge reports the fold as its base and reconstructs only [from, rounds).
func TestMergeFoldedPrefix(t *testing.T) {
	g0 := Sequence{Group: 0, Base: core.Snapshot{Rounds: 2}, Deliveries: []core.Delivery{mkDel(0, 0, 3, 2)}, Rounds: 3}
	g1 := Sequence{Group: 1, Deliveries: []core.Delivery{mkDel(1, 1, 1, 0), mkDel(1, 1, 2, 2)}, Rounds: 3}
	merged, from, rounds := Merge([]Sequence{g0, g1})
	if from != 2 || rounds != 3 {
		t.Fatalf("covered [%d, %d); want [2, 3)", from, rounds)
	}
	// Only round 2 merges: g0's delivery then g1's; g1's round-0 delivery
	// is below the base.
	if len(merged) != 2 || merged[0].Group != 0 || merged[1].Group != 1 {
		t.Fatalf("merged = %v; want g0 then g1 round-2 deliveries", merged)
	}
	// TrimBelowRound aligns sequences with different bases.
	full, _, _ := Merge([]Sequence{
		{Group: 0, Deliveries: []core.Delivery{mkDel(0, 0, 1, 0), mkDel(0, 0, 3, 2)}, Rounds: 3},
		g1,
	})
	if at := VerifyMergePrefix(TrimBelowRound(full, from), merged); at >= 0 {
		t.Fatalf("aligned merges disagree at %d", at)
	}
	// A frontier at or below the base covers nothing.
	if m, from, rounds := Merge([]Sequence{g0, {Group: 1, Rounds: 0}}); len(m) != 0 || from != 2 || rounds != 0 {
		t.Fatalf("empty frontier: merged=%v from=%d rounds=%d", m, from, rounds)
	}
}
