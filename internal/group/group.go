// Package group implements sharded multi-group ordering: one process hosts
// G independent instances of the paper's Atomic Broadcast protocol — the
// ordering groups — behind a single transport connection set and a single
// stable store.
//
// The paper's protocol (§3–§5) is defined per static group Π: nothing in it
// couples one group's Consensus instances, gossip, or delivery sequence to
// another's. Running many groups side by side is therefore the sanctioned
// way to scale the last global serialization point — the sequencer — the
// same way round pipelining scaled the rounds within one sequencer: G
// groups order G batches concurrently, and total throughput grows with G
// until the shared substrate (fsync bandwidth, NIC) saturates.
//
// The package provides the three shared-substrate pieces:
//
//   - Mux multiplexes one transport.Network among the groups of each
//     process: every frame is tagged with its GroupID and demultiplexed to
//     the owning group's virtual endpoint, so G groups share one Mem/TCP
//     connection set instead of multiplying sockets by G.
//   - Router places broadcast keys onto groups (consistent hashing by
//     default, round-robin or custom placement as alternatives).
//   - Merge computes the optional deterministic cross-group interleave for
//     clients that need one global sequence over all groups.
//
// Storage sharing is the storage.Prefixed wrapper's job: each group runs
// over its own namespace of the process's one store, so on a group-commit
// WAL the groups' persists coalesce into the same fsyncs.
//
// # Ordering guarantees
//
// Each group delivers its own total order with the full Atomic Broadcast
// guarantees. Across groups there is no causality and no total order unless
// the deterministic merge is used: two messages routed to different groups
// may be delivered in either relative order at different processes. Clients
// that need cross-message ordering must either route the related keys to
// the same group (the Router's job) or consume the merged sequence.
package group

import (
	"fmt"

	"repro/internal/ids"
)

// StoreNamespace returns the canonical storage namespace of group g on a
// shared per-process store (used with storage.NewPrefixed).
func StoreNamespace(g ids.GroupID) string {
	return fmt.Sprintf("g%d", g)
}
