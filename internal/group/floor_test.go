package group

import (
	"testing"
	"time"

	"repro/internal/ids"
)

// floorClock is a manual clock for FloorTracker tests.
type floorClock struct{ t time.Time }

func (c *floorClock) now() time.Time          { return c.t }
func (c *floorClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker(self func() uint64, cap_ time.Duration) (*FloorTracker, *floorClock) {
	clk := &floorClock{t: time.Unix(1000, 0)}
	tr := NewFloorTracker(self, cap_)
	tr.now = clk.now
	tr.created = clk.t
	return tr, clk
}

func TestFloorTrackerClusterMinimum(t *testing.T) {
	local := uint64(100)
	tr, _ := newTestTracker(func() uint64 { return local }, time.Second)
	peers := []ids.ProcessID{1, 2}

	// Never-reported peers hold the floor at 0 (conservative start).
	if f := tr.ClusterFloor(peers); f != 0 {
		t.Fatalf("floor before any report = %d; want 0", f)
	}
	tr.Report(1, 40, 0, nil)
	tr.Report(2, 70, 0, nil)
	if f := tr.ClusterFloor(peers); f != 40 {
		t.Fatalf("floor = %d; want the slowest fresh peer (40)", f)
	}
	// The local frontier participates in the minimum.
	local = 30
	if f := tr.ClusterFloor(peers); f != 30 {
		t.Fatalf("floor = %d; want the local frontier (30)", f)
	}
	local = 100

	// Reports are monotone per peer: a reordered older report cannot
	// lower an earlier one.
	tr.Report(1, 25, 0, nil)
	if f := tr.ClusterFloor(peers); f != 40 {
		t.Fatalf("floor = %d after stale reorder; want 40", f)
	}
	tr.Report(1, 90, 0, nil)
	if f := tr.ClusterFloor(peers); f != 70 {
		t.Fatalf("floor = %d; want 70", f)
	}
}

func TestFloorTrackerStalenessCap(t *testing.T) {
	tr, clk := newTestTracker(func() uint64 { return 100 }, time.Second)
	peers := []ids.ProcessID{1, 2}
	tr.Report(1, 10, 0, nil)
	tr.Report(2, 80, 0, nil)
	if f := tr.ClusterFloor(peers); f != 10 {
		t.Fatalf("floor = %d; want 10", f)
	}

	// p1 goes silent past the cap: it stops holding the floor down. p2
	// keeps reporting and still gates.
	clk.advance(1500 * time.Millisecond)
	tr.Report(2, 80, 0, nil)
	if f := tr.ClusterFloor(peers); f != 80 {
		t.Fatalf("floor = %d after p1 went stale; want 80", f)
	}
	// p1 returns within a fresh report: it gates again.
	tr.Report(1, 20, 0, nil)
	if f := tr.ClusterFloor(peers); f != 20 {
		t.Fatalf("floor = %d after p1 returned; want 20", f)
	}

	// A peer that NEVER reported stops holding the floor once the cap has
	// elapsed since creation.
	tr2, clk2 := newTestTracker(func() uint64 { return 50 }, time.Second)
	if f := tr2.ClusterFloor(peers); f != 0 {
		t.Fatalf("young tracker floor = %d; want 0", f)
	}
	clk2.advance(2 * time.Second)
	if f := tr2.ClusterFloor(peers); f != 50 {
		t.Fatalf("aged tracker floor = %d; want the local frontier", f)
	}

	// cap 0 = never stale: an unreported peer holds the floor forever.
	tr3, clk3 := newTestTracker(func() uint64 { return 50 }, 0)
	clk3.advance(time.Hour)
	if f := tr3.ClusterFloor(peers); f != 0 {
		t.Fatalf("uncapped tracker floor = %d; want 0 (waits indefinitely)", f)
	}
}

func TestFloorTrackerEpochAdoption(t *testing.T) {
	tr, _ := newTestTracker(func() uint64 { return 0 }, time.Second)
	topo := NewStaticTopology(2)
	topo.ApplyJoin(0, 3, 2)
	enc := topo.Encode()

	tr.Report(1, 5, topo.Epoch, enc)
	if e, d := tr.Epoch(); e != topo.Epoch || d == nil {
		t.Fatalf("epoch = %d, descriptor nil=%v", e, d == nil)
	}
	// Lower epochs never regress the descriptor.
	tr.Report(2, 9, 0, nil)
	if e, d := tr.Epoch(); e != topo.Epoch || d == nil {
		t.Fatalf("epoch regressed to %d (descriptor nil=%v)", e, d == nil)
	}
	// The descriptor round-trips into the topology that produced it.
	_, d := tr.Epoch()
	dec, err := DecodeTopology(d)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != topo.Epoch || dec.Spans[2].Offset != topo.Spans[2].Offset {
		t.Fatalf("adopted descriptor decodes to %+v; want %+v", dec, topo)
	}
}
