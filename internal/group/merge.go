package group

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ids"
)

// Sequence is one group's delivery sequence as input to Merge: the base
// snapshot and explicit suffix from the protocol's A-deliver-sequence()
// plus the group's round counter (the next Consensus instance, i.e. the
// number of completed rounds).
type Sequence struct {
	Group      ids.GroupID
	Base       core.Snapshot
	Deliveries []core.Delivery
	Rounds     uint64
}

// Merge computes the deterministic cross-group interleave: rounds are
// walked in increasing number and, within one round number, groups in
// increasing GroupID; each group contributes the messages its round
// delivered, in their agreed order. The result is a pure function of the
// per-group sequences, so any two processes' merges agree on the rounds
// they both cover — per-group total order lifts to one global total order.
// Each output Delivery carries its owning Sequence's Group (MsgIDs are
// unique only per group, so (Group, Msg.ID) is the global identity).
//
// The merged output covers the round range [from, rounds):
//
//   - rounds is the merge frontier: a round k enters the output once every
//     group has decided round k, so the frontier is the minimum of the
//     per-group round counters. An idle group does not stall it: with
//     core.Config.IdleHeartbeat set (merged-mode sharding defaults it on),
//     a quiescent group's sequencer proposes empty heartbeat rounds after a
//     bounded idle interval, so every group's round counter — and with it
//     the frontier — keeps advancing without application traffic.
//   - from is the merge base: the highest round any group's checkpointing
//     has folded into its base snapshot (Base.Rounds). Rounds below it are
//     no longer reconstructible from the suffixes — under the merge-floor
//     discipline (core.Config.MergeFloor driven by a Stream) every folded
//     round has already passed the process-wide merge frontier, so a
//     consumer that followed the sequence (a Cursor, or repeated Merge
//     calls) has already seen them. With checkpointing off, from is 0 and
//     the output is the complete global sequence.
//
// To compare merges taken at different processes (whose checkpoint floors
// may differ), trim both to their common base with TrimBelowRound before
// applying VerifyMergePrefix.
func Merge(seqs []Sequence) (merged []core.Delivery, from, rounds uint64) {
	if len(seqs) == 0 {
		return nil, 0, 0
	}
	sorted := make([]Sequence, len(seqs))
	copy(sorted, seqs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Group < sorted[j].Group })

	rounds = sorted[0].Rounds
	for _, s := range sorted[1:] {
		if s.Rounds < rounds {
			rounds = s.Rounds
		}
	}
	from = MergeBase(seqs)
	if from >= rounds {
		return nil, from, rounds
	}

	// Bucket each group's suffix by round, stamping the owning group (the
	// Sequence is authoritative, covering hand-built inputs). Suffixes are
	// already in delivery order, so per-round buckets keep the agreed
	// order.
	type bucket struct {
		group ids.GroupID
		byRnd map[uint64][]core.Delivery
	}
	buckets := make([]bucket, 0, len(sorted))
	for _, s := range sorted {
		b := bucket{group: s.Group, byRnd: make(map[uint64][]core.Delivery)}
		for _, d := range s.Deliveries {
			if d.Round >= from && d.Round < rounds {
				d.Group = s.Group
				b.byRnd[d.Round] = append(b.byRnd[d.Round], d)
			}
		}
		buckets = append(buckets, b)
	}
	for k := from; k < rounds; k++ {
		for _, b := range buckets {
			merged = append(merged, b.byRnd[k]...)
		}
	}
	return merged, from, rounds
}

// MergeT computes the deterministic cross-group interleave under a live
// topology: each group's local rounds are lifted into the global numbering
// (global = Span.Offset + local), output Deliveries carry the global round,
// and the interleave walks global rounds ascending with groups ascending
// within a round — which reduces to Merge exactly when every offset is 0.
// Sealed groups stop gating the frontier once drained (decided past their
// final round), and drained retired groups may be absent from seqs
// entirely; a live group missing from seqs pins the frontier at its offset
// (nothing beyond its splice point can be emitted without it).
//
// The result covers global rounds [from, rounds): from is MergeBaseT (the
// highest folded global round), rounds the global merge frontier. Because
// both are pure functions of the per-group sequences and the (marker-
// agreed) topology, any two processes' merges agree on the global rounds
// they both cover — the splice across a reshard epoch is deterministic.
func MergeT(seqs []Sequence, topo *Topology) (merged []core.Delivery, from, rounds uint64) {
	if topo == nil {
		return Merge(seqs)
	}
	bySeq := make(map[ids.GroupID]*Sequence, len(seqs))
	for i := range seqs {
		if _, known := topo.Spans[seqs[i].Group]; known {
			bySeq[seqs[i].Group] = &seqs[i]
		}
	}
	rounds = noRound
	for g, sp := range topo.Spans {
		var decided uint64
		if sq, ok := bySeq[g]; ok {
			decided = sq.Rounds
		} else if sp.Sealed {
			decided = sp.Final + 1 // drained retired group: fully decided
		}
		if c := contribution(sp, decided); c < rounds {
			rounds = c
		}
	}
	if rounds == noRound {
		rounds = 0
		for g, sp := range topo.Spans {
			var decided uint64
			if sq, ok := bySeq[g]; ok {
				decided = sq.Rounds
			} else if sp.Sealed {
				decided = sp.Final + 1
			}
			if c := sp.Offset + decided; c > rounds {
				rounds = c
			}
		}
	}
	from = MergeBaseT(seqs, topo)
	if from >= rounds {
		return nil, from, rounds
	}

	gs := topo.Groups()
	type bucket struct {
		byRnd map[uint64][]core.Delivery
	}
	buckets := make([]bucket, len(gs))
	for i, g := range gs {
		sq, ok := bySeq[g]
		if !ok {
			continue
		}
		sp := topo.Spans[g]
		b := bucket{byRnd: make(map[uint64][]core.Delivery)}
		for _, d := range sq.Deliveries {
			global := sp.Offset + d.Round
			if global >= from && global < rounds {
				d.Group = g
				d.Round = global
				b.byRnd[global] = append(b.byRnd[global], d)
			}
		}
		buckets[i] = b
	}
	for k := from; k < rounds; k++ {
		for i := range buckets {
			if buckets[i].byRnd != nil {
				merged = append(merged, buckets[i].byRnd[k]...)
			}
		}
	}
	return merged, from, rounds
}

// MergeBaseT returns the lowest global round a batch merge of seqs under
// topo can reconstruct: the maximum over the groups' folded-prefix heights
// lifted to global rounds. A group that has folded nothing contributes 0
// regardless of its offset — its whole history is still present.
func MergeBaseT(seqs []Sequence, topo *Topology) uint64 {
	var base uint64
	for _, s := range seqs {
		sp, ok := topo.Spans[s.Group]
		if !ok || s.Base.Rounds == 0 {
			continue
		}
		if h := sp.Offset + s.Base.Rounds; h > base {
			base = h
		}
	}
	return base
}

// MergeBase returns the lowest round a batch merge of seqs can
// reconstruct: the maximum over the groups' folded-prefix heights
// (Base.Rounds). 0 when no group has checkpointed.
func MergeBase(seqs []Sequence) uint64 {
	var base uint64
	for _, s := range seqs {
		if s.Base.Rounds > base {
			base = s.Base.Rounds
		}
	}
	return base
}

// TrimBelowRound drops the leading deliveries of a merged sequence whose
// Round is below round, aligning merges whose bases differ (deliveries in
// a merged sequence are ordered by round).
func TrimBelowRound(m []core.Delivery, round uint64) []core.Delivery {
	i := 0
	for i < len(m) && m[i].Round < round {
		i++
	}
	return m[i:]
}

// VerifyMergePrefix checks that two merged sequences agree on their common
// prefix (the determinism property Merge guarantees for sequences taken
// from processes of one cluster, once aligned to a common base with
// TrimBelowRound). It returns the first disagreeing index, or -1 when one
// is a prefix of the other.
func VerifyMergePrefix(a, b []core.Delivery) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Group != b[i].Group || a[i].Msg.ID != b[i].Msg.ID {
			return i
		}
	}
	return -1
}
