package group

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ids"
)

// Sequence is one group's delivery sequence as input to Merge: the base
// snapshot and explicit suffix from the protocol's A-deliver-sequence()
// plus the group's round counter (the next Consensus instance, i.e. the
// number of completed rounds).
type Sequence struct {
	Group      ids.GroupID
	Base       core.Snapshot
	Deliveries []core.Delivery
	Rounds     uint64
}

// Merge computes the deterministic cross-group interleave: rounds are
// walked in increasing number and, within one round number, groups in
// increasing GroupID; each group contributes the messages its round
// delivered, in their agreed order. The result is a pure function of the
// per-group sequences, so any two processes' merges agree on their common
// prefix — per-group total order lifts to one global total order. Each
// output Delivery carries its owning Sequence's Group (MsgIDs are unique
// only per group, so (Group, Msg.ID) is the global identity).
//
// Only complete rounds merge deterministically: a round k enters the
// output once every group has decided round k, so the merged prefix covers
// rounds [0, min over groups of Rounds). The returned rounds value is that
// frontier. Liveness caveat: the frontier only advances while every group
// keeps deciding rounds, so merged-mode deployments should route traffic
// to all groups (or accept that an idle group pins the merge).
//
// ok is false when some group's base snapshot has folded rounds below the
// frontier into a checkpoint (Base.Rounds > 0): the interleave of those
// rounds is no longer reconstructible from the suffix, so clients that
// consume the merged sequence must run the groups without application
// checkpointing (see the README's sharding caveats).
func Merge(seqs []Sequence) (merged []core.Delivery, rounds uint64, ok bool) {
	if len(seqs) == 0 {
		return nil, 0, true
	}
	sorted := make([]Sequence, len(seqs))
	copy(sorted, seqs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Group < sorted[j].Group })

	rounds = sorted[0].Rounds
	for _, s := range sorted[1:] {
		if s.Rounds < rounds {
			rounds = s.Rounds
		}
	}
	ok = true
	for _, s := range sorted {
		if s.Base.Rounds > 0 && rounds > 0 {
			ok = false // rounds [0, Base.Rounds) were folded away
		}
	}
	if !ok || rounds == 0 {
		return nil, rounds, ok
	}

	// Bucket each group's suffix by round, stamping the owning group (the
	// Sequence is authoritative, covering hand-built inputs). Suffixes are
	// already in delivery order, so per-round buckets keep the agreed
	// order.
	type bucket struct {
		group ids.GroupID
		byRnd map[uint64][]core.Delivery
	}
	buckets := make([]bucket, 0, len(sorted))
	for _, s := range sorted {
		b := bucket{group: s.Group, byRnd: make(map[uint64][]core.Delivery)}
		for _, d := range s.Deliveries {
			if d.Round < rounds {
				d.Group = s.Group
				b.byRnd[d.Round] = append(b.byRnd[d.Round], d)
			}
		}
		buckets = append(buckets, b)
	}
	for k := uint64(0); k < rounds; k++ {
		for _, b := range buckets {
			merged = append(merged, b.byRnd[k]...)
		}
	}
	return merged, rounds, true
}

// VerifyMergePrefix checks that two merged sequences agree on their common
// prefix (the determinism property Merge guarantees for sequences taken
// from processes of one cluster). It returns the first disagreeing index,
// or -1 when one is a prefix of the other.
func VerifyMergePrefix(a, b []core.Delivery) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Group != b[i].Group || a[i].Msg.ID != b[i].Msg.ID {
			return i
		}
	}
	return -1
}
