package group

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
)

// histDel builds one delivery of a synthetic per-group history.
func histDel(g ids.GroupID, seq uint64, round, pos uint64, payload byte) core.Delivery {
	return core.Delivery{
		Msg: msg.Message{
			ID:      ids.MsgID{Sender: ids.ProcessID(g), Incarnation: 1, Seq: seq},
			Payload: []byte{payload, byte(seq)},
		},
		Group: g,
		Round: round,
		Pos:   pos,
	}
}

// deliveryIdentical is the byte-identical comparison of the differential
// oracle.
func deliveryIdentical(a, b core.Delivery) bool {
	if a.Group != b.Group || a.Round != b.Round || a.Pos != b.Pos || a.Msg.ID != b.Msg.ID {
		return false
	}
	if len(a.Msg.Payload) != len(b.Msg.Payload) {
		return false
	}
	for i := range a.Msg.Payload {
		if a.Msg.Payload[i] != b.Msg.Payload[i] {
			return false
		}
	}
	return true
}

// TestStreamCursorMatchesBatchMerge is the randomized differential over
// seeded multi-group histories: a cursor fed round events (with replay
// duplicates, empty rounds, cursors subscribed mid-stream, and merge-
// floor-respecting folds) must emit exactly what batch Merge reconstructs
// — byte-identical, including under checkpointing.
func TestStreamCursorMatchesBatchMerge(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			groups := 2 + rng.Intn(3)
			rounds := 5 + rng.Intn(40)

			// The ground-truth history: hist[g][r] is round r's batch at
			// group g (possibly empty), with per-group contiguous Pos.
			hist := make([][][]core.Delivery, groups)
			var seq uint64
			for g := range hist {
				hist[g] = make([][]core.Delivery, rounds)
				var pos uint64
				for r := range hist[g] {
					n := rng.Intn(4) // 0 = empty round
					for i := 0; i < n; i++ {
						seq++
						hist[g][r] = append(hist[g][r],
							histDel(ids.GroupID(g), seq, uint64(r), pos, byte(g)))
						pos++
					}
				}
			}
			// seqsAt builds the per-group Sequences as a process at the
			// given decided/folded state would report them.
			seqsAt := func(decided, folded []uint64) []Sequence {
				out := make([]Sequence, groups)
				for g := 0; g < groups; g++ {
					s := Sequence{Group: ids.GroupID(g), Rounds: decided[g]}
					s.Base.Rounds = folded[g]
					var foldedPos uint64
					for r := uint64(0); r < decided[g]; r++ {
						if r < folded[g] {
							foldedPos += uint64(len(hist[g][r]))
							continue
						}
						s.Deliveries = append(s.Deliveries, hist[g][r]...)
					}
					s.Base.Pos = foldedPos
					out[g] = s
				}
				return out
			}

			st := NewStream(groups)
			decided := make([]uint64, groups)
			folded := make([]uint64, groups)
			type sub struct {
				cur *Cursor
				out []core.Delivery
			}
			subscribe := func() *sub {
				c, err := st.Subscribe(func() ([]Sequence, error) {
					return seqsAt(decided, folded), nil
				})
				if err != nil {
					t.Fatalf("subscribe: %v", err)
				}
				return &sub{cur: c}
			}
			drainAndCheck := func(s *sub) {
				var err error
				s.out, err = s.cur.Next(s.out)
				if err != nil {
					t.Fatalf("next: %v", err)
				}
				oracle, from, frontier := Merge(seqsAt(decided, folded))
				if got := s.cur.Emitted(); got != frontier && frontier > s.cur.StartRound() {
					t.Fatalf("cursor emitted %d; batch frontier %d", got, frontier)
				}
				// The cursor may retain rounds a later fold removed from
				// the batch view; compare over the rounds both cover.
				lo := s.cur.StartRound()
				if from > lo {
					lo = from
				}
				want := TrimBelowRound(oracle, lo)
				got := TrimBelowRound(s.out, lo)
				if len(got) != len(want) {
					t.Fatalf("cursor streamed %d deliveries past round %d; batch merge has %d (start %d, from %d)",
						len(got), lo, len(want), s.cur.StartRound(), from)
				}
				for i := range want {
					if !deliveryIdentical(got[i], want[i]) {
						t.Fatalf("cursor and batch merge differ at %d: %+v vs %+v", i, got[i], want[i])
					}
				}
			}

			subs := []*sub{subscribe()}
			for {
				// Pick a group that still has rounds to commit.
				var candidates []int
				for g := 0; g < groups; g++ {
					if decided[g] < uint64(rounds) {
						candidates = append(candidates, g)
					}
				}
				if len(candidates) == 0 {
					break
				}
				g := candidates[rng.Intn(len(candidates))]
				r := decided[g]
				st.NoteRound(ids.GroupID(g), r, hist[g][r])
				decided[g]++

				switch rng.Intn(10) {
				case 0:
					// Recovery replay: re-offer a prefix of past rounds
					// (duplicates must be ignored).
					if decided[g] > 1 {
						from := uint64(rng.Intn(int(decided[g])))
						for rr := from; rr < decided[g]; rr++ {
							st.NoteRound(ids.GroupID(g), rr, hist[g][rr])
						}
					}
				case 1:
					// Checkpoint fold under the merge floor: any group may
					// fold up to the frontier.
					fg := rng.Intn(groups)
					if f := st.Frontier(); f > folded[fg] {
						folded[fg] = f
					}
				case 2:
					// A new consumer subscribes mid-history.
					subs = append(subs, subscribe())
				case 3:
					drainAndCheck(subs[rng.Intn(len(subs))])
				}
			}
			if got, want := st.Frontier(), uint64(rounds); got != want {
				t.Fatalf("final frontier %d; want %d", got, want)
			}
			for _, s := range subs {
				drainAndCheck(s)
			}
		})
	}
}

func TestStreamEmptyRoundsAdvanceFrontier(t *testing.T) {
	st := NewStream(2)
	cur, err := st.Subscribe(func() ([]Sequence, error) {
		return []Sequence{{Group: 0}, {Group: 1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := histDel(0, 1, 1, 0, 0)
	st.NoteRound(0, 0, nil) // empty round
	st.NoteRound(0, 1, []core.Delivery{d})
	st.NoteRound(1, 0, nil)
	if got := st.Frontier(); got != 1 {
		t.Fatalf("frontier %d; want 1 (g1 decided one empty round)", got)
	}
	out, err := cur.Next(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("round 1 not complete yet: out=%v err=%v", out, err)
	}
	st.NoteRound(1, 1, nil)
	out, err = cur.Next(out)
	if err != nil || len(out) != 1 || !deliveryIdentical(out[0], d) {
		t.Fatalf("expected g0's round-1 delivery: out=%v err=%v", out, err)
	}
	if cur.Emitted() != 2 {
		t.Fatalf("emitted %d; want 2", cur.Emitted())
	}
}

func TestStreamCursorLagsOnSkippedRounds(t *testing.T) {
	st := NewStream(1)
	cur, err := st.Subscribe(func() ([]Sequence, error) {
		return []Sequence{{Group: 0}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st.NoteRound(0, 0, nil)
	st.NoteRound(0, 5, nil) // a state transfer skipped rounds 1-4
	if !cur.Lagged() {
		t.Fatal("cursor did not notice the gap")
	}
	if _, err := cur.Next(nil); !errors.Is(err, ErrCursorLagged) {
		t.Fatalf("Next = %v; want ErrCursorLagged", err)
	}
}

func TestStreamCursorClose(t *testing.T) {
	st := NewStream(1)
	cur, err := st.Subscribe(func() ([]Sequence, error) {
		return []Sequence{{Group: 0}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if _, err := cur.Next(nil); !errors.Is(err, ErrCursorClosed) {
		t.Fatalf("Next = %v; want ErrCursorClosed", err)
	}
	st.mu.Lock()
	n := len(st.cursors)
	st.mu.Unlock()
	if n != 0 {
		t.Fatalf("closed cursor still subscribed (%d)", n)
	}
}

func TestStreamSubscribeSeedsFromFoldedBase(t *testing.T) {
	st := NewStream(2)
	// Group 0 folded rounds [0,2) away; both groups decided 3 rounds.
	d0 := histDel(0, 9, 2, 5, 0)
	d1a := histDel(1, 1, 1, 0, 1)
	d1b := histDel(1, 2, 2, 1, 1)
	for g := 0; g < 2; g++ {
		for r := uint64(0); r < 3; r++ {
			// Events happened before this consumer existed.
		}
	}
	cur, err := st.Subscribe(func() ([]Sequence, error) {
		return []Sequence{
			{Group: 0, Base: core.Snapshot{Rounds: 2, Pos: 5}, Deliveries: []core.Delivery{d0}, Rounds: 3},
			{Group: 1, Deliveries: []core.Delivery{d1a, d1b}, Rounds: 3},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cur.StartRound() != 2 {
		t.Fatalf("start %d; want 2 (the merge base)", cur.StartRound())
	}
	out, err := cur.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Round 2 only: g0's then g1's delivery; g1's round-1 delivery is
	// below the base.
	if len(out) != 2 || !deliveryIdentical(out[0], d0) || !deliveryIdentical(out[1], d1b) {
		t.Fatalf("out = %+v; want [g0 r2, g1 r2]", out)
	}
}

// TestStreamNoteRoundOutOfRange: events for unknown groups must not
// panic or corrupt state.
func TestStreamNoteRoundOutOfRange(t *testing.T) {
	st := NewStream(1)
	st.NoteRound(7, 0, nil)
	if st.Frontier() != 0 {
		t.Fatal("out-of-range group advanced the frontier")
	}
	if st.Decided(7) != 0 {
		t.Fatal("out-of-range group has decided rounds")
	}
}
