package group

import (
	"bytes"
	"testing"
)

func TestTopologyMarkerCodecs(t *testing.T) {
	seal := EncodeSealMarker(7)
	if w, ok := DecodeSealMarker(seal); !ok || w != 7 {
		t.Fatalf("seal round-trip: w=%d ok=%v", w, ok)
	}
	if _, ok := DecodeJoinMarker(seal); ok {
		t.Fatal("seal marker decoded as join")
	}
	join := EncodeJoinMarker(9)
	if g, ok := DecodeJoinMarker(join); !ok || g != 9 {
		t.Fatalf("join round-trip: g=%v ok=%v", g, ok)
	}
	if _, ok := DecodeSealMarker(join); ok {
		t.Fatal("join marker decoded as seal")
	}
	for _, p := range [][]byte{seal, join} {
		if !IsMarker(p) {
			t.Fatalf("IsMarker(%q) = false", p)
		}
	}
	for _, p := range [][]byte{nil, []byte("x"), []byte("\x00ab/"), []byte("application payload")} {
		if IsMarker(p) {
			t.Fatalf("IsMarker(%q) = true for application content", p)
		}
		if _, ok := DecodeSealMarker(p); ok {
			t.Fatalf("DecodeSealMarker accepted %q", p)
		}
		if _, ok := DecodeJoinMarker(p); ok {
			t.Fatalf("DecodeJoinMarker accepted %q", p)
		}
	}
	// Truncated magic without a varint body is not a marker.
	if _, ok := DecodeSealMarker([]byte("\x00ab/seal1\x00")); ok {
		t.Fatal("seal marker without a window decoded")
	}
}

func TestTopologySealJoinTransitions(t *testing.T) {
	topo := NewStaticTopology(2)
	if topo.Epoch != 0 || len(topo.Spans) != 2 {
		t.Fatalf("static topology: %+v", topo)
	}
	if a, ok := topo.Anchor(); !ok || a != 0 {
		t.Fatalf("anchor = %v, %v", a, ok)
	}

	// Join: offset = anchorOffset + r_j + 1, epoch bumps, duplicates inert.
	if !topo.ApplyJoin(0, 4, 2) {
		t.Fatal("join not applied")
	}
	if topo.ApplyJoin(0, 9, 2) {
		t.Fatal("duplicate join applied (first marker's position must be authoritative)")
	}
	if sp := topo.Spans[2]; sp.Offset != 5 || sp.Sealed {
		t.Fatalf("joined span = %+v; want offset 5", sp)
	}
	if topo.Epoch != 1 {
		t.Fatalf("epoch = %d after one join", topo.Epoch)
	}
	// Join anchored at an unknown group is inert.
	if topo.ApplyJoin(7, 0, 3) {
		t.Fatal("join through unknown anchor applied")
	}

	// Seal: final = r_s + W, epoch bumps, duplicates inert.
	if !topo.ApplySeal(1, 10, 3) {
		t.Fatal("seal not applied")
	}
	if topo.ApplySeal(1, 20, 9) {
		t.Fatal("duplicate seal applied")
	}
	if sp := topo.Spans[1]; !sp.Sealed || sp.Final != 13 {
		t.Fatalf("sealed span = %+v; want final 13", sp)
	}
	if topo.Epoch != 2 {
		t.Fatalf("epoch = %d after join+seal", topo.Epoch)
	}
	if gf, ok := topo.GlobalFinal(1); !ok || gf != 13 {
		t.Fatalf("GlobalFinal(1) = %d, %v", gf, ok)
	}
	if _, ok := topo.GlobalFinal(0); ok {
		t.Fatal("GlobalFinal returned a value for an unsealed group")
	}

	active := topo.Active()
	if len(active) != 2 || active[0] != 0 || active[1] != 2 {
		t.Fatalf("active = %v; want [0 2]", active)
	}
	if gs := topo.Groups(); len(gs) != 3 {
		t.Fatalf("groups = %v; want all three (sealed included)", gs)
	}

	// Seal the anchor too: the anchor moves to the lowest surviving group.
	if !topo.ApplySeal(0, 0, 1) {
		t.Fatal("anchor seal not applied")
	}
	if a, ok := topo.Anchor(); !ok || a != 2 {
		t.Fatalf("anchor after sealing 0 = %v, %v; want 2", a, ok)
	}
}

func TestTopologyEncodeDecodeRoundTrip(t *testing.T) {
	topo := NewStaticTopology(2)
	topo.ApplyJoin(0, 4, 2)
	topo.ApplySeal(1, 10, 3)

	enc := topo.Encode()
	dec, err := DecodeTopology(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != topo.Epoch || len(dec.Spans) != len(topo.Spans) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", dec, topo)
	}
	for g, sp := range topo.Spans {
		if dec.Spans[g] != sp {
			t.Fatalf("span %v: %+v vs %+v", g, dec.Spans[g], sp)
		}
	}
	// Deterministic encoding (the floor gossip compares descriptors).
	if !bytes.Equal(enc, dec.Encode()) {
		t.Fatal("Encode is not deterministic across a decode round-trip")
	}
	// Corrupt/truncated descriptors are rejected, not misread.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeTopology(enc[:i]); err == nil && i < len(enc)-1 {
			t.Fatalf("truncated descriptor of %d/%d bytes decoded", i, len(enc))
		}
	}

	// Clone is deep: mutating the clone leaves the original alone.
	cl := topo.Clone()
	cl.ApplySeal(0, 5, 1)
	if topo.Spans[0].Sealed {
		t.Fatal("Clone shares span storage with the original")
	}
}

func TestTopologyGlobalRounds(t *testing.T) {
	// The doc's splice arithmetic: a group joining off anchor round r_j
	// gets offset anchorOffset+r_j+1, chained joins compose.
	topo := NewStaticTopology(1)
	topo.ApplyJoin(0, 9, 1)  // g1 at offset 10
	topo.ApplyJoin(1, 4, 2)  // g2 anchored in g1: offset 10+4+1 = 15
	if sp := topo.Spans[1]; sp.Offset != 10 {
		t.Fatalf("g1 offset = %d; want 10", sp.Offset)
	}
	if sp := topo.Spans[2]; sp.Offset != 15 {
		t.Fatalf("g2 offset = %d; want 15", sp.Offset)
	}
}
