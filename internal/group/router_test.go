package group

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

func TestHashRouterDeterministicAndBalanced(t *testing.T) {
	const groups = 4
	r1 := NewHashRouter(groups)
	r2 := NewHashRouter(groups) // a second process's router
	counts := make(map[ids.GroupID]int)
	for i := 0; i < 4000; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		g := r1.Route(key)
		if g < 0 || int(g) >= groups {
			t.Fatalf("route out of range: %v", g)
		}
		if g2 := r2.Route(key); g2 != g {
			t.Fatalf("routers disagree on %q: %v vs %v", key, g, g2)
		}
		if g2 := r1.Route(key); g2 != g {
			t.Fatalf("router unstable on %q: %v vs %v", key, g, g2)
		}
		counts[g]++
	}
	for g := ids.GroupID(0); int(g) < groups; g++ {
		if counts[g] < 4000/groups/4 {
			t.Fatalf("group %v starved: %v", g, counts)
		}
	}
}

// TestHashRouterAffinityUnderResharding: growing the ring from G to G+1
// groups must keep most keys in place (the consistent-hashing property
// that distinguishes the ring from hash-mod-G).
func TestHashRouterAffinityUnderResharding(t *testing.T) {
	const n = 4000
	r4 := NewHashRouter(4)
	r5 := NewHashRouter(5)
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		if r4.Route(key) != r5.Route(key) {
			moved++
		}
	}
	// Ideal is 1/5 of keys; mod-hashing moves ~4/5. Allow generous slack.
	if moved > n/2 {
		t.Fatalf("resharding 4->5 moved %d/%d keys (consistent hashing should move ~%d)", moved, n, n/5)
	}
}

func TestRoundRobinRouterCycles(t *testing.T) {
	r := NewRoundRobinRouter(3)
	counts := make(map[ids.GroupID]int)
	for i := 0; i < 9; i++ {
		counts[r.Route(nil)]++
	}
	for g := ids.GroupID(0); g < 3; g++ {
		if counts[g] != 3 {
			t.Fatalf("uneven round robin: %v", counts)
		}
	}
}

func TestRouterFunc(t *testing.T) {
	r := RouterFunc(func(key []byte) ids.GroupID { return ids.GroupID(len(key)) })
	if got := r.Route([]byte("ab")); got != 2 {
		t.Fatalf("RouterFunc = %v; want 2", got)
	}
}

// TestHashRouterOverKeyspaceStability is the live-resharding stability
// property: for every group count G in 2..16, growing the ring by one
// group moves only keys that land on the newcomer (~1/(G+1) of the
// keyspace), and retiring one group moves only the keys it owned
// (~1/G) — every move lands on a surviving group. Mod-hashing would
// reshuffle ~(G-1)/G of the keyspace; the bound pinned here is what
// makes AddGroup/RetireGroup cheap for the application's key affinity.
func TestHashRouterOverKeyspaceStability(t *testing.T) {
	const n = 8000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "stability-key-%d", i)
	}
	for G := 2; G <= 16; G++ {
		gs := make([]ids.GroupID, G)
		for i := range gs {
			gs[i] = ids.GroupID(i)
		}
		base := NewHashRouterOver(gs)

		// Grow: add group G. Moves must all land on the newcomer and stay
		// near the ideal n/(G+1) share.
		grown := NewHashRouterOver(append(append([]ids.GroupID{}, gs...), ids.GroupID(G)))
		moved := 0
		for _, k := range keys {
			was, is := base.Route(k), grown.Route(k)
			if was == is {
				continue
			}
			if is != ids.GroupID(G) {
				t.Fatalf("G=%d grow: key moved %v->%v, not to the new group", G, was, is)
			}
			moved++
		}
		ideal := n / (G + 1)
		if moved > 2*ideal {
			t.Fatalf("G=%d grow moved %d/%d keys; ideal %d, cap %d", G, moved, n, ideal, 2*ideal)
		}
		if moved == 0 {
			t.Fatalf("G=%d grow moved no keys: the new group is starved", G)
		}

		// Retire: remove the last group. Exactly its keys move, each to a
		// survivor, and the move count mirrors the grow count of G-1->G.
		retired := NewHashRouterOver(gs[:G-1])
		moved = 0
		for _, k := range keys {
			was, is := base.Route(k), retired.Route(k)
			if was == is {
				continue
			}
			if was != ids.GroupID(G-1) {
				t.Fatalf("G=%d retire: key moved %v->%v but its owner survived", G, was, is)
			}
			if is == ids.GroupID(G-1) {
				t.Fatalf("G=%d retire: key still routed to the retired group", G)
			}
			moved++
		}
		ideal = n / G
		if moved > 2*ideal {
			t.Fatalf("G=%d retire moved %d/%d keys; ideal %d, cap %d", G, moved, n, ideal, 2*ideal)
		}

		// Identity with the static constructor over {0..G-1}: live and
		// seed deployments of the same shape route identically.
		static := NewHashRouter(G)
		for _, k := range keys[:500] {
			if base.Route(k) != static.Route(k) {
				t.Fatalf("G=%d: NewHashRouterOver ring differs from NewHashRouter", G)
			}
		}
	}
}

// TestHashRouterOverSparseIDs: after a retirement the live ID set has
// holes; routing must stay deterministic and cover exactly the members.
func TestHashRouterOverSparseIDs(t *testing.T) {
	gs := []ids.GroupID{0, 2, 5}
	r1, r2 := NewHashRouterOver(gs), NewHashRouterOver(gs)
	seen := make(map[ids.GroupID]int)
	for i := 0; i < 3000; i++ {
		k := fmt.Appendf(nil, "sparse-%d", i)
		g := r1.Route(k)
		if g != 0 && g != 2 && g != 5 {
			t.Fatalf("routed to non-member group %v", g)
		}
		if r2.Route(k) != g {
			t.Fatalf("sparse routers disagree on %q", k)
		}
		seen[g]++
	}
	for _, g := range gs {
		if seen[g] == 0 {
			t.Fatalf("member group %v starved: %v", g, seen)
		}
	}
}
