package group

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

func TestHashRouterDeterministicAndBalanced(t *testing.T) {
	const groups = 4
	r1 := NewHashRouter(groups)
	r2 := NewHashRouter(groups) // a second process's router
	counts := make(map[ids.GroupID]int)
	for i := 0; i < 4000; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		g := r1.Route(key)
		if g < 0 || int(g) >= groups {
			t.Fatalf("route out of range: %v", g)
		}
		if g2 := r2.Route(key); g2 != g {
			t.Fatalf("routers disagree on %q: %v vs %v", key, g, g2)
		}
		if g2 := r1.Route(key); g2 != g {
			t.Fatalf("router unstable on %q: %v vs %v", key, g, g2)
		}
		counts[g]++
	}
	for g := ids.GroupID(0); int(g) < groups; g++ {
		if counts[g] < 4000/groups/4 {
			t.Fatalf("group %v starved: %v", g, counts)
		}
	}
}

// TestHashRouterAffinityUnderResharding: growing the ring from G to G+1
// groups must keep most keys in place (the consistent-hashing property
// that distinguishes the ring from hash-mod-G).
func TestHashRouterAffinityUnderResharding(t *testing.T) {
	const n = 4000
	r4 := NewHashRouter(4)
	r5 := NewHashRouter(5)
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		if r4.Route(key) != r5.Route(key) {
			moved++
		}
	}
	// Ideal is 1/5 of keys; mod-hashing moves ~4/5. Allow generous slack.
	if moved > n/2 {
		t.Fatalf("resharding 4->5 moved %d/%d keys (consistent hashing should move ~%d)", moved, n, n/5)
	}
}

func TestRoundRobinRouterCycles(t *testing.T) {
	r := NewRoundRobinRouter(3)
	counts := make(map[ids.GroupID]int)
	for i := 0; i < 9; i++ {
		counts[r.Route(nil)]++
	}
	for g := ids.GroupID(0); g < 3; g++ {
		if counts[g] != 3 {
			t.Fatalf("uneven round robin: %v", counts)
		}
	}
}

func TestRouterFunc(t *testing.T) {
	r := RouterFunc(func(key []byte) ids.GroupID { return ids.GroupID(len(key)) })
	if got := r.Route([]byte("ab")); got != 2 {
		t.Fatalf("RouterFunc = %v; want 2", got)
	}
}
