package group

import (
	"context"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

func recvOne(t *testing.T, ep transport.Endpoint, timeout time.Duration) (transport.Packet, bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	pkt, err := ep.Recv(ctx)
	if err != nil {
		return transport.Packet{}, false
	}
	return pkt, true
}

// TestMuxDemuxesByGroup: two groups share one Mem connection set; each
// virtual endpoint sees exactly its own group's frames.
func TestMuxDemuxesByGroup(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	mux := NewMux(net, 2)

	eps := make(map[[2]int]transport.Endpoint) // [gid][pid]
	for g := 0; g < 2; g++ {
		for p := 0; p < 2; p++ {
			ep, err := mux.Net(ids.GroupID(g)).Attach(ids.ProcessID(p))
			if err != nil {
				t.Fatalf("attach g%d p%d: %v", g, p, err)
			}
			eps[[2]int{g, p}] = ep
		}
	}

	eps[[2]int{0, 0}].Send(1, []byte("from-g0"))
	eps[[2]int{1, 0}].Send(1, []byte("from-g1"))

	pkt, ok := recvOne(t, eps[[2]int{0, 1}], time.Second)
	if !ok || string(pkt.Data) != "from-g0" || pkt.From != 0 {
		t.Fatalf("g0 p1 got %q from %v; want from-g0 from p0", pkt.Data, pkt.From)
	}
	pkt, ok = recvOne(t, eps[[2]int{1, 1}], time.Second)
	if !ok || string(pkt.Data) != "from-g1" {
		t.Fatalf("g1 p1 got %q; want from-g1", pkt.Data)
	}

	// Multisend reaches the same group at every process, including self.
	eps[[2]int{0, 1}].Multisend([]byte("cast"))
	for p := 0; p < 2; p++ {
		pkt, ok := recvOne(t, eps[[2]int{0, p}], time.Second)
		if !ok || string(pkt.Data) != "cast" || pkt.From != 1 {
			t.Fatalf("g0 p%d got %q from %v; want cast from p1", p, pkt.Data, pkt.From)
		}
	}
	if st := mux.Stats(); st.Demuxed == 0 {
		t.Fatalf("no frames demuxed: %+v", st)
	}
}

// TestMuxPerGroupCrashSemantics: a detached group's frames are dropped
// while its sibling group on the same process keeps receiving, and the
// group can re-attach (recover) afterwards.
func TestMuxPerGroupCrashSemantics(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	mux := NewMux(net, 2)

	g0p0, _ := mux.Net(0).Attach(0)
	g0p1, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	g1p0, _ := mux.Net(1).Attach(0)
	g1p1, _ := mux.Net(1).Attach(1)

	// Crash group 0 at p1 only.
	g0p1.Close()
	g0p0.Send(1, []byte("lost"))
	g1p0.Send(1, []byte("kept"))
	if pkt, ok := recvOne(t, g1p1, time.Second); !ok || string(pkt.Data) != "kept" {
		t.Fatalf("sibling group lost its frame: %q %v", pkt.Data, ok)
	}

	// Re-attach (double attach of a live group must fail first).
	if _, err := mux.Net(1).Attach(1); err == nil {
		t.Fatal("double attach of live group succeeded")
	}
	g0p1b, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatalf("re-attach after close: %v", err)
	}
	g0p0.Send(1, []byte("after-recovery"))
	if pkt, ok := recvOne(t, g0p1b, time.Second); !ok || string(pkt.Data) != "after-recovery" {
		t.Fatalf("recovered group got %q %v; want after-recovery", pkt.Data, ok)
	}
	if st := mux.Stats(); st.DroppedDetached == 0 {
		t.Fatalf("expected detached-drop accounting, got %+v", st)
	}
}

// TestMuxFullProcessCrashReleasesEndpoint: closing every group of a
// process closes the shared real endpoint synchronously, so a fresh
// incarnation can attach immediately (the crash/recover cycle of a whole
// sharded process).
func TestMuxFullProcessCrashReleasesEndpoint(t *testing.T) {
	net := transport.NewMem(1, transport.MemOptions{})
	defer net.Close()
	mux := NewMux(net, 2)

	for cycle := 0; cycle < 3; cycle++ {
		a, err := mux.Net(0).Attach(0)
		if err != nil {
			t.Fatalf("cycle %d attach g0: %v", cycle, err)
		}
		b, err := mux.Net(1).Attach(0)
		if err != nil {
			t.Fatalf("cycle %d attach g1: %v", cycle, err)
		}
		a.Close()
		// One group down, the real endpoint must survive for the other.
		b.Send(0, []byte("self"))
		if pkt, ok := recvOne(t, b, time.Second); !ok || string(pkt.Data) != "self" {
			t.Fatalf("cycle %d: surviving group lost self-send: %q %v", cycle, pkt.Data, ok)
		}
		b.Close()
	}
}

// TestMuxRejectsBadFrames: an out-of-range group tag and a frame too short
// to carry one are dropped and accounted, not delivered or fatal.
func TestMuxRejectsBadFrames(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	mux := NewMux(net, 1)

	vep, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	// A raw endpoint on the inner network bypasses the tagging.
	raw, err := net.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	raw.Send(1, []byte{0x07, 0x00, 'x'}) // gid 7 of 1 -> unknown
	raw.Send(1, []byte{0x01})            // 1 byte: malformed
	raw.Send(1, []byte{0x00, 0x00, 'y'}) // gid 0: valid

	pkt, ok := recvOne(t, vep, time.Second)
	if !ok || string(pkt.Data) != "y" {
		t.Fatalf("got %q %v; want the single valid frame y", pkt.Data, ok)
	}
	st := mux.Stats()
	if st.DroppedUnknown != 1 || st.DroppedMalformed != 1 {
		t.Fatalf("drop accounting = %+v; want 1 unknown + 1 malformed", st)
	}
}
