package group

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/transport"
)

// tagLen is the per-frame group tag: a little-endian u16 GroupID. 2 bytes
// of overhead buys 65536 groups per connection set.
const tagLen = 2

// MuxStats counts multiplexer-level events (observability and tests).
type MuxStats struct {
	Tagged           int64 // frames sent through a virtual endpoint
	Demuxed          int64 // frames delivered to a virtual endpoint
	DroppedMalformed int64 // frames too short to carry a group tag
	DroppedUnknown   int64 // tag outside [0, Groups)
	DroppedDetached  int64 // owning group down (its endpoint detached)
	DroppedOverrun   int64 // virtual inbox full
}

// Mux multiplexes one transport.Network among G ordering groups: Net(g)
// is a virtual Network for group g whose endpoints tag every outgoing
// frame with g and receive exactly the frames tagged g. All groups of one
// process share one real endpoint — one listener and one connection per
// peer on TCP, one inbox on Mem — attached when the process's first group
// attaches and closed when its last group detaches.
//
// Crash semantics are preserved per group: frames addressed to a detached
// group are dropped (§2.1 — messages that arrive while the process is
// down are lost), even while other groups of the same process are up.
//
// The Mux is shared by the whole cluster, exactly like the Network it
// wraps.
type Mux struct {
	inner  transport.Network
	groups int

	mu    sync.Mutex
	procs map[ids.ProcessID]*procMux

	tagged, demuxed, malformed, unknown, detached, overrun atomic.Int64
}

// NewMux wraps inner for groups ordering groups.
func NewMux(inner transport.Network, groups int) *Mux {
	if groups < 1 {
		groups = 1
	}
	return &Mux{
		inner:  inner,
		groups: groups,
		procs:  make(map[ids.ProcessID]*procMux),
	}
}

// Groups returns the number of ordering groups the mux serves.
func (m *Mux) Groups() int { return m.groups }

// Inner returns the wrapped network.
func (m *Mux) Inner() transport.Network { return m.inner }

// Stats returns a snapshot of the multiplexer counters.
func (m *Mux) Stats() MuxStats {
	return MuxStats{
		Tagged:           m.tagged.Load(),
		Demuxed:          m.demuxed.Load(),
		DroppedMalformed: m.malformed.Load(),
		DroppedUnknown:   m.unknown.Load(),
		DroppedDetached:  m.detached.Load(),
		DroppedOverrun:   m.overrun.Load(),
	}
}

// Net returns the virtual Network of group g. Each group's node attaches
// to its own virtual network exactly as an unsharded node attaches to the
// real one.
func (m *Mux) Net(g ids.GroupID) transport.Network {
	return groupNet{m: m, g: g}
}

type groupNet struct {
	m *Mux
	g ids.GroupID
}

var _ transport.Network = groupNet{}

func (n groupNet) N() int { return n.m.inner.N() }

func (n groupNet) Attach(pid ids.ProcessID) (transport.Endpoint, error) {
	return n.m.attach(n.g, pid)
}

// procMux is one process's shared real endpoint plus the registry of its
// live virtual endpoints, keyed by group.
type procMux struct {
	m   *Mux
	pid ids.ProcessID
	ep  transport.Endpoint

	mu   sync.Mutex
	veps map[ids.GroupID]*muxEndpoint
}

func (m *Mux) attach(g ids.GroupID, pid ids.ProcessID) (transport.Endpoint, error) {
	if g < 0 || int(g) >= m.groups {
		return nil, fmt.Errorf("group: gid %v out of range [0,%d)", g, m.groups)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	pm := m.procs[pid]
	if pm == nil {
		ep, err := m.inner.Attach(pid)
		if err != nil {
			return nil, err
		}
		pm = &procMux{m: m, pid: pid, ep: ep, veps: make(map[ids.GroupID]*muxEndpoint)}
		m.procs[pid] = pm
		go pm.recvLoop()
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.veps[g] != nil {
		return nil, fmt.Errorf("%w: %v group %v", transport.ErrDetached, pid, g)
	}
	vep := &muxEndpoint{
		pm:    pm,
		g:     g,
		inbox: make(chan transport.Packet, 4096),
		done:  make(chan struct{}),
	}
	pm.veps[g] = vep
	return vep, nil
}

// recvLoop demultiplexes the real endpoint's packets to the owning group's
// virtual inbox. It exits when the real endpoint closes (last group
// detached, or the inner network shut down).
func (pm *procMux) recvLoop() {
	for {
		pkt, err := pm.ep.Recv(context.Background())
		if err != nil {
			return
		}
		if len(pkt.Data) < tagLen {
			pm.m.malformed.Add(1)
			continue
		}
		g := ids.GroupID(binary.LittleEndian.Uint16(pkt.Data))
		if int(g) >= pm.m.groups {
			pm.m.unknown.Add(1)
			continue
		}
		pm.mu.Lock()
		vep := pm.veps[g]
		pm.mu.Unlock()
		if vep == nil {
			// The group is down at this process: its packets are lost,
			// exactly as §2.1 prescribes for a down process.
			pm.m.detached.Add(1)
			continue
		}
		select {
		case vep.inbox <- transport.Packet{From: pkt.From, Data: pkt.Data[tagLen:]}:
			pm.m.demuxed.Add(1)
		default:
			pm.m.overrun.Add(1) // buffer overrun; fair-lossy permits it
		}
	}
}

// detach removes group g's virtual endpoint; when it was the last one the
// shared real endpoint closes too (and the recvLoop exits). The real close
// completes before detach returns, so a full process crash (all groups
// closed) leaves the pid immediately re-attachable.
func (pm *procMux) detach(g ids.GroupID, vep *muxEndpoint) {
	m := pm.m
	m.mu.Lock()
	pm.mu.Lock()
	if pm.veps[g] != vep {
		pm.mu.Unlock()
		m.mu.Unlock()
		return
	}
	delete(pm.veps, g)
	last := len(pm.veps) == 0
	if last && m.procs[pm.pid] == pm {
		delete(m.procs, pm.pid)
	}
	pm.mu.Unlock()
	if last {
		// Holding m.mu serializes the real close against a concurrent
		// re-attach of the same pid (the close path never takes m.mu
		// again, so this cannot deadlock).
		pm.ep.Close()
	}
	m.mu.Unlock()
}

// muxEndpoint is group g's virtual endpoint at one process: Send/Multisend
// tag frames, Recv reads the demultiplexed inbox.
type muxEndpoint struct {
	pm    *procMux
	g     ids.GroupID
	inbox chan transport.Packet
	done  chan struct{}

	closeOnce sync.Once
}

var _ transport.Endpoint = (*muxEndpoint)(nil)

func (e *muxEndpoint) Local() ids.ProcessID { return e.pm.pid }

func (e *muxEndpoint) tag(data []byte) []byte {
	buf := make([]byte, tagLen+len(data))
	binary.LittleEndian.PutUint16(buf, uint16(e.g))
	copy(buf[tagLen:], data)
	return buf
}

func (e *muxEndpoint) Send(to ids.ProcessID, data []byte) {
	select {
	case <-e.done:
		return // closed endpoints transmit nothing
	default:
	}
	e.pm.m.tagged.Add(1)
	e.pm.ep.Send(to, e.tag(data))
}

func (e *muxEndpoint) Multisend(data []byte) {
	select {
	case <-e.done:
		return
	default:
	}
	e.pm.m.tagged.Add(1)
	e.pm.ep.Multisend(e.tag(data))
}

func (e *muxEndpoint) Recv(ctx context.Context) (transport.Packet, error) {
	select {
	case pkt := <-e.inbox:
		return pkt, nil
	case <-e.done:
		return transport.Packet{}, transport.ErrClosed
	case <-ctx.Done():
		return transport.Packet{}, ctx.Err()
	}
}

func (e *muxEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.pm.detach(e.g, e)
	})
	return nil
}
