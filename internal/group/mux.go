package group

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// tagLen is the per-frame tag: a little-endian u16. 2 bytes of overhead
// buys 65534 groups per connection set plus the reserved lanes below.
const tagLen = 2

// Reserved frame tags above the group range.
const (
	// procTag marks the process-level lane: one virtual network shared by
	// process-scoped services (the shared failure detector) rather than by
	// one ordering group. It is refcounted with the group endpoints, so a
	// whole-process crash closes it like any group endpoint.
	procTag uint16 = 0xFFFF
	// coalTag marks a coalesced frame: a batch of length-delimited tagged
	// frames packed into one transport write by the write-coalescing mux.
	coalTag uint16 = 0xFFFE
	// dissemTag marks the dissemination lane: the virtual network the
	// process-level payload ring (internal/dissem) runs on when the
	// ordering/dissemination split is enabled. Like the proc lane it is
	// process-scoped — relay frames carry their own group tag inside.
	dissemTag uint16 = 0xFFFD
	// maxGroups is the highest usable group count (tags below the
	// reserved lanes).
	maxGroups = int(dissemTag)
)

// MuxOptions tunes the mux's write-coalescing pipeline — the network twin
// of the storage engine's group-commit triggers (SyncEvery/MaxSyncDelay)
// and the proposal batching triggers (MaxBatch/MaxBatchDelay): small
// frames submitted concurrently by different groups of one process are
// packed into one length-delimited transport write.
type MuxOptions struct {
	// FlushDelay enables coalescing when positive: a queued frame waits at
	// most this long before its batch is written out. Zero disables
	// coalescing (every frame is its own transport write).
	FlushDelay time.Duration
	// FlushBytes flushes a destination's queue as soon as it holds this
	// many bytes (default 16KiB when coalescing is enabled). It must stay
	// well under transport.MaxFrame.
	FlushBytes int
}

func (o *MuxOptions) fill() {
	if o.FlushDelay > 0 && o.FlushBytes <= 0 {
		o.FlushBytes = 16 << 10
	}
}

// enabled reports whether the options turn coalescing on.
func (o MuxOptions) enabled() bool { return o.FlushDelay > 0 }

// MuxStats counts multiplexer-level events (observability and tests).
type MuxStats struct {
	Tagged           int64 // frames sent through a virtual endpoint
	Demuxed          int64 // frames delivered to a virtual endpoint
	DroppedMalformed int64 // frames too short to carry a group tag
	DroppedUnknown   int64 // tag outside [0, Groups) and not a reserved lane
	DroppedDetached  int64 // owning group down (its endpoint detached)
	DroppedOverrun   int64 // virtual inbox full
	CoalescedWrites  int64 // transport writes that carried >= 2 frames
	CoalescedFrames  int64 // frames that rode a coalesced write
}

// Mux multiplexes one transport.Network among G ordering groups: Net(g)
// is a virtual Network for group g whose endpoints tag every outgoing
// frame with g and receive exactly the frames tagged g. All groups of one
// process share one real endpoint — one listener and one connection per
// peer on TCP, one inbox on Mem — attached when the process's first group
// attaches and closed when its last group detaches. ProcNet is one more
// virtual lane of the same endpoint for process-scoped services (the
// shared failure detector).
//
// Crash semantics are preserved per group: frames addressed to a detached
// group are dropped (§2.1 — messages that arrive while the process is
// down are lost), even while other groups of the same process are up.
//
// With coalescing enabled (NewMuxOpts), small frames submitted by any of
// the process's groups within FlushDelay of each other are packed into one
// length-delimited transport write — G groups' gossip, heartbeats and
// ballot messages cost one syscall-sized write instead of G.
//
// The Mux is shared by the whole cluster, exactly like the Network it
// wraps.
type Mux struct {
	inner  transport.Network
	groups atomic.Int32 // raised by Grow during live scale-out
	opts   MuxOptions

	mu    sync.Mutex
	procs map[ids.ProcessID]*procMux

	tagged, demuxed, malformed, unknown, detached, overrun atomic.Int64
	coalWrites, coalFrames                                 atomic.Int64
}

// NewMux wraps inner for groups ordering groups, without write coalescing.
func NewMux(inner transport.Network, groups int) *Mux {
	return NewMuxOpts(inner, groups, MuxOptions{})
}

// NewMuxOpts wraps inner for groups ordering groups with the given
// coalescing policy.
func NewMuxOpts(inner transport.Network, groups int, opts MuxOptions) *Mux {
	if groups < 1 {
		groups = 1
	}
	if groups > maxGroups {
		groups = maxGroups
	}
	opts.fill()
	m := &Mux{
		inner: inner,
		opts:  opts,
		procs: make(map[ids.ProcessID]*procMux),
	}
	m.groups.Store(int32(groups))
	return m
}

// Groups returns the number of ordering groups the mux serves.
func (m *Mux) Groups() int { return int(m.groups.Load()) }

// Grow raises the number of group lanes the mux serves to at least groups
// — the live scale-out path. Existing lanes, attachments and in-flight
// frames are untouched; frames tagged with a lane at or above the current
// count stop being dropped as unknown the moment Grow returns. Shrinking
// is not supported: a retired group's lane simply goes quiet once its
// nodes detach.
func (m *Mux) Grow(groups int) {
	if groups > maxGroups {
		groups = maxGroups
	}
	for {
		cur := m.groups.Load()
		if int32(groups) <= cur {
			return
		}
		if m.groups.CompareAndSwap(cur, int32(groups)) {
			return
		}
	}
}

// Inner returns the wrapped network.
func (m *Mux) Inner() transport.Network { return m.inner }

// SetObs exports the multiplexer counters as read-on-scrape metrics under
// "abcast.mux.<name>". The mux is cluster-wide, so wire it to one plane
// (conventionally process 0's). Nil is a no-op.
func (m *Mux) SetObs(p *obs.Plane) {
	if p == nil {
		return
	}
	reg := p.Reg()
	reg.Func("abcast.mux.tagged", m.tagged.Load)
	reg.Func("abcast.mux.demuxed", m.demuxed.Load)
	reg.Func("abcast.mux.dropped_malformed", m.malformed.Load)
	reg.Func("abcast.mux.dropped_unknown", m.unknown.Load)
	reg.Func("abcast.mux.dropped_detached", m.detached.Load)
	reg.Func("abcast.mux.dropped_overrun", m.overrun.Load)
	reg.Func("abcast.mux.coalesced_writes", m.coalWrites.Load)
	reg.Func("abcast.mux.coalesced_frames", m.coalFrames.Load)
}

// Stats returns a snapshot of the multiplexer counters.
func (m *Mux) Stats() MuxStats {
	return MuxStats{
		Tagged:           m.tagged.Load(),
		Demuxed:          m.demuxed.Load(),
		DroppedMalformed: m.malformed.Load(),
		DroppedUnknown:   m.unknown.Load(),
		DroppedDetached:  m.detached.Load(),
		DroppedOverrun:   m.overrun.Load(),
		CoalescedWrites:  m.coalWrites.Load(),
		CoalescedFrames:  m.coalFrames.Load(),
	}
}

// Net returns the virtual Network of group g. Each group's node attaches
// to its own virtual network exactly as an unsharded node attaches to the
// real one.
func (m *Mux) Net(g ids.GroupID) transport.Network {
	return groupNet{m: m, g: g}
}

type groupNet struct {
	m *Mux
	g ids.GroupID
}

var _ transport.Network = groupNet{}

func (n groupNet) N() int { return n.m.inner.N() }

func (n groupNet) Attach(pid ids.ProcessID) (transport.Endpoint, error) {
	if n.g < 0 || int(n.g) >= n.m.Groups() {
		return nil, fmt.Errorf("group: gid %v out of range [0,%d)", n.g, n.m.Groups())
	}
	return n.m.attach(uint16(n.g), pid)
}

// ProcNet returns the process-level virtual Network: the lane shared by
// process-scoped services of a sharded process (one shared failure
// detector instead of one per group). It shares the real endpoint with the
// group lanes — attaching it does not open new connections, and a
// whole-process crash (all lanes closed) drops its frames exactly like a
// group's.
func (m *Mux) ProcNet() transport.Network { return procNet{m: m} }

type procNet struct{ m *Mux }

var _ transport.Network = procNet{}

func (n procNet) N() int { return n.m.inner.N() }

func (n procNet) Attach(pid ids.ProcessID) (transport.Endpoint, error) {
	return n.m.attach(procTag, pid)
}

// DissemNet returns the dissemination-lane virtual Network: the lane the
// process-level payload ring runs on when the ordering/dissemination split
// is enabled (see internal/dissem and node.StartSharedRing). Same sharing
// and crash semantics as ProcNet.
func (m *Mux) DissemNet() transport.Network { return dissemNet{m: m} }

type dissemNet struct{ m *Mux }

var _ transport.Network = dissemNet{}

func (n dissemNet) N() int { return n.m.inner.N() }

func (n dissemNet) Attach(pid ids.ProcessID) (transport.Endpoint, error) {
	return n.m.attach(dissemTag, pid)
}

// procMux is one process's shared real endpoint plus the registry of its
// live virtual endpoints, keyed by frame tag (group id or the proc lane).
type procMux struct {
	m   *Mux
	pid ids.ProcessID
	ep  transport.Endpoint

	mu   sync.Mutex
	veps map[uint16]*muxEndpoint

	coal *coalescer // nil when coalescing is disabled
}

func (m *Mux) attach(tag uint16, pid ids.ProcessID) (transport.Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pm := m.procs[pid]
	if pm == nil {
		ep, err := m.inner.Attach(pid)
		if err != nil {
			return nil, err
		}
		pm = &procMux{m: m, pid: pid, ep: ep, veps: make(map[uint16]*muxEndpoint)}
		if m.opts.enabled() {
			pm.coal = newCoalescer(pm, m.opts)
		}
		m.procs[pid] = pm
		go pm.recvLoop()
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.veps[tag] != nil {
		return nil, fmt.Errorf("%w: %v lane %#x", transport.ErrDetached, pid, tag)
	}
	vep := &muxEndpoint{
		pm:    pm,
		tag:   tag,
		inbox: make(chan transport.Packet, 4096),
		done:  make(chan struct{}),
	}
	pm.veps[tag] = vep
	return vep, nil
}

// recvLoop demultiplexes the real endpoint's packets to the owning lane's
// virtual inbox, unpacking coalesced frames. It exits when the real
// endpoint closes (last lane detached, or the inner network shut down).
func (pm *procMux) recvLoop() {
	for {
		pkt, err := pm.ep.Recv(context.Background())
		if err != nil {
			return
		}
		if len(pkt.Data) < tagLen {
			pm.m.malformed.Add(1)
			continue
		}
		tag := binary.LittleEndian.Uint16(pkt.Data)
		if tag == coalTag {
			pm.splitCoalesced(pkt.From, pkt.Data[tagLen:])
			continue
		}
		pm.dispatch(pkt.From, tag, pkt.Data[tagLen:])
	}
}

// splitCoalesced unpacks a batched write: a sequence of uvarint-length-
// prefixed tagged frames. Nested coalescing is rejected as malformed.
func (pm *procMux) splitCoalesced(from ids.ProcessID, rest []byte) {
	for len(rest) > 0 {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			pm.m.malformed.Add(1)
			return
		}
		frame := rest[sz : sz+int(n)]
		rest = rest[sz+int(n):]
		if len(frame) < tagLen {
			pm.m.malformed.Add(1)
			continue
		}
		tag := binary.LittleEndian.Uint16(frame)
		if tag == coalTag {
			pm.m.malformed.Add(1)
			continue
		}
		pm.dispatch(from, tag, frame[tagLen:])
	}
}

// dispatch routes one demultiplexed frame to its lane's inbox.
func (pm *procMux) dispatch(from ids.ProcessID, tag uint16, payload []byte) {
	if tag != procTag && tag != dissemTag && int(tag) >= pm.m.Groups() {
		pm.m.unknown.Add(1)
		return
	}
	pm.mu.Lock()
	vep := pm.veps[tag]
	pm.mu.Unlock()
	if vep == nil {
		// The lane is down at this process: its packets are lost,
		// exactly as §2.1 prescribes for a down process.
		pm.m.detached.Add(1)
		return
	}
	select {
	case vep.inbox <- transport.Packet{From: from, Data: payload}:
		pm.m.demuxed.Add(1)
	default:
		pm.m.overrun.Add(1) // buffer overrun; fair-lossy permits it
	}
}

// send transmits one tagged frame, through the coalescer when enabled.
func (pm *procMux) send(to ids.ProcessID, frame []byte) {
	if pm.coal != nil {
		pm.coal.submit(to, frame)
		return
	}
	pm.ep.Send(to, frame)
}

// multisend transmits one tagged frame to every process, through the
// coalescer when enabled.
func (pm *procMux) multisend(frame []byte) {
	if pm.coal != nil {
		pm.coal.submit(ids.Nobody, frame)
		return
	}
	pm.ep.Multisend(frame)
}

// detach removes the lane's virtual endpoint; when it was the last one the
// shared real endpoint closes too (and the recvLoop exits). The real close
// completes before detach returns, so a full process crash (all lanes
// closed) leaves the pid immediately re-attachable.
func (pm *procMux) detach(tag uint16, vep *muxEndpoint) {
	m := pm.m
	m.mu.Lock()
	pm.mu.Lock()
	if pm.veps[tag] != vep {
		pm.mu.Unlock()
		m.mu.Unlock()
		return
	}
	delete(pm.veps, tag)
	last := len(pm.veps) == 0
	if last && m.procs[pm.pid] == pm {
		delete(m.procs, pm.pid)
	}
	pm.mu.Unlock()
	if last {
		// Holding m.mu serializes the real close against a concurrent
		// re-attach of the same pid (the close path never takes m.mu
		// again, so this cannot deadlock). Pending coalesced frames are
		// dropped — a crash loses in-flight traffic, as §2.1 permits.
		if pm.coal != nil {
			pm.coal.close()
		}
		pm.ep.Close()
	}
	m.mu.Unlock()
}

// muxEndpoint is one lane's virtual endpoint at one process: Send/Multisend
// tag frames, Recv reads the demultiplexed inbox.
type muxEndpoint struct {
	pm    *procMux
	tag   uint16
	inbox chan transport.Packet
	done  chan struct{}

	closeOnce sync.Once
}

var _ transport.Endpoint = (*muxEndpoint)(nil)

func (e *muxEndpoint) Local() ids.ProcessID { return e.pm.pid }

func (e *muxEndpoint) tagFrame(data []byte) []byte {
	buf := make([]byte, tagLen+len(data))
	binary.LittleEndian.PutUint16(buf, e.tag)
	copy(buf[tagLen:], data)
	return buf
}

func (e *muxEndpoint) Send(to ids.ProcessID, data []byte) {
	select {
	case <-e.done:
		return // closed endpoints transmit nothing
	default:
	}
	e.pm.m.tagged.Add(1)
	e.pm.send(to, e.tagFrame(data))
}

func (e *muxEndpoint) Multisend(data []byte) {
	select {
	case <-e.done:
		return
	default:
	}
	e.pm.m.tagged.Add(1)
	e.pm.multisend(e.tagFrame(data))
}

func (e *muxEndpoint) Recv(ctx context.Context) (transport.Packet, error) {
	select {
	case pkt := <-e.inbox:
		return pkt, nil
	case <-e.done:
		return transport.Packet{}, transport.ErrClosed
	case <-ctx.Done():
		return transport.Packet{}, ctx.Err()
	}
}

func (e *muxEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.pm.detach(e.tag, e)
	})
	return nil
}

// coalescer packs the frames all lanes of one process submit within a
// FlushDelay window into single transport writes: one per-destination queue
// for unicast frames, one queue for multisends. A queue flushes as soon as
// it holds FlushBytes (size trigger) or when the shared timer fires (delay
// trigger) — the same two-trigger shape as proposal batching and the WAL's
// group commit. Frames inside one coalesced write keep their submission
// order, but writes themselves may reorder (a size-trigger flush can
// overtake a timer flush already past the lock, and unicast/multisend
// queues are independent) — reordering the fair-lossy transport contract
// already permits and every protocol layer tolerates. Do not build
// anything on cross-write FIFO here.
type coalescer struct {
	pm   *procMux
	opts MuxOptions

	mu         sync.Mutex
	uni        map[ids.ProcessID]*sendQueue
	multi      sendQueue
	timerArmed bool
	closed     bool
}

type sendQueue struct {
	frames [][]byte
	bytes  int
}

func (q *sendQueue) take() [][]byte {
	frames := q.frames
	q.frames = nil
	q.bytes = 0
	return frames
}

func newCoalescer(pm *procMux, opts MuxOptions) *coalescer {
	return &coalescer{pm: pm, opts: opts, uni: make(map[ids.ProcessID]*sendQueue)}
}

// submit queues one tagged frame for to (ids.Nobody = multisend) and
// applies the flush triggers.
func (c *coalescer) submit(to ids.ProcessID, frame []byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	q := &c.multi
	if to != ids.Nobody {
		q = c.uni[to]
		if q == nil {
			q = &sendQueue{}
			c.uni[to] = q
		}
	}
	q.frames = append(q.frames, frame)
	q.bytes += len(frame)
	if q.bytes >= c.opts.FlushBytes {
		frames := q.take()
		c.mu.Unlock()
		c.write(to, frames)
		return
	}
	if !c.timerArmed {
		c.timerArmed = true
		time.AfterFunc(c.opts.FlushDelay, c.onTimer)
	}
	c.mu.Unlock()
}

// onTimer flushes every queue when the delay trigger fires.
func (c *coalescer) onTimer() {
	type flush struct {
		to     ids.ProcessID
		frames [][]byte
	}
	var out []flush
	c.mu.Lock()
	c.timerArmed = false
	if c.closed {
		c.mu.Unlock()
		return
	}
	for to, q := range c.uni {
		if len(q.frames) > 0 {
			out = append(out, flush{to, q.take()})
		}
	}
	if len(c.multi.frames) > 0 {
		out = append(out, flush{ids.Nobody, c.multi.take()})
	}
	c.mu.Unlock()
	for _, f := range out {
		c.write(f.to, f.frames)
	}
}

// write performs one transport write for the batch: a lone frame goes out
// as-is, several are packed into a coalesced frame.
func (c *coalescer) write(to ids.ProcessID, frames [][]byte) {
	var out []byte
	if len(frames) == 1 {
		out = frames[0]
	} else {
		size := tagLen
		for _, f := range frames {
			size += binary.MaxVarintLen32 + len(f)
		}
		out = make([]byte, tagLen, size)
		binary.LittleEndian.PutUint16(out, coalTag)
		for _, f := range frames {
			out = binary.AppendUvarint(out, uint64(len(f)))
			out = append(out, f...)
		}
		c.pm.m.coalWrites.Add(1)
		c.pm.m.coalFrames.Add(int64(len(frames)))
	}
	if to == ids.Nobody {
		c.pm.ep.Multisend(out)
		return
	}
	c.pm.ep.Send(to, out)
}

// close drops all pending frames; further submissions are ignored.
func (c *coalescer) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.uni = make(map[ids.ProcessID]*sendQueue)
	c.multi = sendQueue{}
}
