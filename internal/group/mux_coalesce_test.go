package group

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// TestMuxCoalescesConcurrentFrames: with coalescing enabled, frames
// submitted by several groups of one process inside the flush window ride
// one inner transport write, and the receiver still demultiplexes every
// frame to its owning group.
func TestMuxCoalescesConcurrentFrames(t *testing.T) {
	const groups = 4
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	mux := NewMuxOpts(net, groups, MuxOptions{FlushDelay: 2 * time.Millisecond})

	senders := make([]transport.Endpoint, groups)
	receivers := make([]transport.Endpoint, groups)
	for g := 0; g < groups; g++ {
		var err error
		if senders[g], err = mux.Net(ids.GroupID(g)).Attach(0); err != nil {
			t.Fatalf("attach sender g%d: %v", g, err)
		}
		if receivers[g], err = mux.Net(ids.GroupID(g)).Attach(1); err != nil {
			t.Fatalf("attach receiver g%d: %v", g, err)
		}
	}

	before := net.Stats().Sent
	for g := 0; g < groups; g++ {
		senders[g].Send(1, []byte(fmt.Sprintf("frame-g%d", g)))
	}
	for g := 0; g < groups; g++ {
		pkt, ok := recvOne(t, receivers[g], time.Second)
		if !ok || string(pkt.Data) != fmt.Sprintf("frame-g%d", g) {
			t.Fatalf("g%d got %q", g, pkt.Data)
		}
	}
	// All four frames were submitted well inside one 2ms window: the
	// inner network must have seen fewer writes than frames.
	wrote := net.Stats().Sent - before
	if wrote >= groups {
		t.Fatalf("coalescing had no effect: %d inner writes for %d frames", wrote, groups)
	}
	st := mux.Stats()
	if st.CoalescedWrites == 0 || st.CoalescedFrames < 2 {
		t.Fatalf("coalescing not counted: %+v", st)
	}
}

// TestMuxCoalesceSizeTrigger: a queue at FlushBytes flushes immediately,
// without waiting for the delay trigger.
func TestMuxCoalesceSizeTrigger(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	// A long delay that the test would notice, with a small byte trigger.
	mux := NewMuxOpts(net, 1, MuxOptions{FlushDelay: 5 * time.Second, FlushBytes: 64})

	s, err := mux.Net(0).Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 40)
	s.Send(1, payload)
	s.Send(1, payload) // 2nd frame crosses 64 queued bytes: inline flush
	for i := 0; i < 2; i++ {
		if _, ok := recvOne(t, r, time.Second); !ok {
			t.Fatalf("frame %d never flushed (size trigger broken)", i)
		}
	}
}

// TestMuxCoalescesMultisends: multisends from different groups coalesce
// into one inner multisend and reach every process's matching group.
func TestMuxCoalescesMultisends(t *testing.T) {
	const groups = 3
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	mux := NewMuxOpts(net, groups, MuxOptions{FlushDelay: 2 * time.Millisecond})

	eps := make(map[[2]int]transport.Endpoint)
	for g := 0; g < groups; g++ {
		for p := 0; p < 2; p++ {
			ep, err := mux.Net(ids.GroupID(g)).Attach(ids.ProcessID(p))
			if err != nil {
				t.Fatal(err)
			}
			eps[[2]int{g, p}] = ep
		}
	}
	for g := 0; g < groups; g++ {
		eps[[2]int{g, 0}].Multisend([]byte(fmt.Sprintf("cast-g%d", g)))
	}
	for g := 0; g < groups; g++ {
		for p := 0; p < 2; p++ {
			pkt, ok := recvOne(t, eps[[2]int{g, p}], time.Second)
			if !ok || string(pkt.Data) != fmt.Sprintf("cast-g%d", g) {
				t.Fatalf("g%d p%d got %q", g, p, pkt.Data)
			}
		}
	}
}

// TestMuxCoalescedMalformedSubframes: corrupt coalesced frames (bad
// length prefix, nested coalescing, truncated tag) are dropped without
// disturbing the endpoint.
func TestMuxCoalescedMalformedSubframes(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	mux := NewMux(net, 1)

	// p1's mux endpoint is the receiver under attack; p0 sends raw frames
	// through the inner network, bypassing the sending-side mux.
	r, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	coal := func(sub ...[]byte) []byte {
		buf := make([]byte, tagLen)
		binary.LittleEndian.PutUint16(buf, coalTag)
		for _, f := range sub {
			buf = binary.AppendUvarint(buf, uint64(len(f)))
			buf = append(buf, f...)
		}
		return buf
	}
	tagged := func(tag uint16, payload string) []byte {
		buf := make([]byte, tagLen+len(payload))
		binary.LittleEndian.PutUint16(buf, tag)
		copy(buf[tagLen:], payload)
		return buf
	}

	// Length prefix past the end of the frame.
	bad := coal(tagged(0, "x"))
	bad[tagLen] = 0xE0 // inflate the first uvarint length
	raw.Send(1, bad)
	// Nested coalescing.
	raw.Send(1, coal(coal(tagged(0, "nested"))))
	// Sub-frame too short to carry a tag.
	raw.Send(1, coal([]byte{0x01}))
	// A good frame after the garbage still arrives.
	raw.Send(1, coal(tagged(0, "good"), tagged(0, "good2")))

	pkt, ok := recvOne(t, r, time.Second)
	if !ok || string(pkt.Data) != "good" {
		t.Fatalf("got %q, want good", pkt.Data)
	}
	pkt, ok = recvOne(t, r, time.Second)
	if !ok || string(pkt.Data) != "good2" {
		t.Fatalf("got %q, want good2", pkt.Data)
	}
	if st := mux.Stats(); st.DroppedMalformed == 0 {
		t.Fatalf("malformed sub-frames not counted: %+v", st)
	}
}

// TestMuxProcLane: the process-level lane delivers to ProcNet endpoints,
// is isolated from the group lanes, and shares the refcounted real
// endpoint (crashing every lane frees the pid; frames to a closed proc
// lane are dropped like any detached group's).
func TestMuxProcLane(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{})
	defer net.Close()
	mux := NewMux(net, 2)

	g0p0, err := mux.Net(0).Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	proc0, err := mux.ProcNet().Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	proc1, err := mux.ProcNet().Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	g0p1, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatal(err)
	}

	// Proc-lane traffic reaches only the proc lane.
	proc0.Multisend([]byte("hb"))
	pkt, ok := recvOne(t, proc1, time.Second)
	if !ok || string(pkt.Data) != "hb" || pkt.From != 0 {
		t.Fatalf("proc lane got %q from %v", pkt.Data, pkt.From)
	}
	// Group traffic does not leak into the proc lane, and vice versa.
	g0p0.Send(1, []byte("group-frame"))
	if pkt, ok := recvOne(t, g0p1, time.Second); !ok || string(pkt.Data) != "group-frame" {
		t.Fatalf("group lane got %q", pkt.Data)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if pkt, err := proc1.Recv(ctx); err == nil {
		t.Fatalf("proc lane leaked group frame %q", pkt.Data)
	}
	cancel()

	// Double attach of the proc lane fails like a group lane's.
	if _, err := mux.ProcNet().Attach(0); err == nil {
		t.Fatal("double proc-lane attach succeeded")
	}

	// Close p1's proc lane: its heartbeats are dropped while the group
	// lane stays up.
	proc1.Close()
	proc0.Multisend([]byte("hb2"))
	if pkt, ok := recvOne(t, g0p1, time.Second); !ok || string(pkt.Data) != "hb2" {
		// The group lane must still see group traffic...
		_ = pkt
	}
	// ...which there is none of; what matters is the drop counter.
	deadline := time.Now().Add(time.Second)
	for mux.Stats().DroppedDetached == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := mux.Stats(); st.DroppedDetached == 0 {
		t.Fatalf("closed proc lane's frames not dropped: %+v", st)
	}

	// Closing every lane of p1 frees the pid for re-attach (recovery).
	g0p1.Close()
	if _, err := mux.ProcNet().Attach(1); err != nil {
		t.Fatalf("re-attach proc lane after full close: %v", err)
	}
}
