package group

import (
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs
}

// sendUntil retries Send until the expected payload arrives at dst or the
// deadline passes — TCP sends are best-effort (a failed write only drops
// the cached connection), so reconnection needs a retry, exactly like the
// protocol's gossip provides.
func sendUntil(t *testing.T, src, dst transport.Endpoint, to ids.ProcessID, payload string, d time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		src.Send(to, []byte(payload))
		if pkt, ok := recvOne(t, dst, 100*time.Millisecond); ok && string(pkt.Data) == payload {
			return true
		}
	}
	return false
}

// TestMuxTCPInterleavedGroups runs two groups over one TCP connection set:
// frames from both groups interleave on the same p0->p1 connection and
// demultiplex to the right group endpoints.
func TestMuxTCPInterleavedGroups(t *testing.T) {
	tcp := transport.NewTCP(freeAddrs(t, 2))
	mux := NewMux(tcp, 2)

	g0p0, err := mux.Net(0).Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	defer g0p0.Close()
	g1p0, err := mux.Net(1).Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	defer g1p0.Close()
	g0p1, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	defer g0p1.Close()
	g1p1, err := mux.Net(1).Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	defer g1p1.Close()

	// Interleave sends from both groups; all ride the one cached p0->p1
	// connection of the shared real endpoint.
	const rounds = 20
	for i := 0; i < rounds; i++ {
		g0p0.Send(1, fmt.Appendf(nil, "g0-%d", i))
		g1p0.Send(1, fmt.Appendf(nil, "g1-%d", i))
	}
	// TCP per connection preserves order, so each group sees its own
	// subsequence in order (allowing best-effort loss of a prefix while
	// the first connection establishes — in practice Send dials
	// synchronously, so frames arrive).
	for g, ep := range map[string]transport.Endpoint{"g0": g0p1, "g1": g1p1} {
		got := 0
		last := -1
		for {
			pkt, ok := recvOne(t, ep, 500*time.Millisecond)
			if !ok {
				break
			}
			var idx int
			if _, err := fmt.Sscanf(string(pkt.Data), g+"-%d", &idx); err != nil {
				t.Fatalf("%s received foreign frame %q", g, pkt.Data)
			}
			if idx <= last {
				t.Fatalf("%s frames out of order: %d after %d", g, idx, last)
			}
			last = idx
			got++
		}
		if got == 0 {
			t.Fatalf("%s received nothing", g)
		}
	}
}

// TestMuxTCPReconnectAfterCrash crash-recovers a whole sharded process
// (every group detaches, the shared listener closes) and checks the peer's
// cached connection recovers: its first writes fail, the connection drops,
// and a redial reaches the new incarnation for both groups.
func TestMuxTCPReconnectAfterCrash(t *testing.T) {
	tcp := transport.NewTCP(freeAddrs(t, 2))
	mux := NewMux(tcp, 2)

	g0p0, err := mux.Net(0).Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	defer g0p0.Close()
	g1p0, err := mux.Net(1).Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	defer g1p0.Close()
	g0p1, _ := mux.Net(0).Attach(1)
	g1p1, _ := mux.Net(1).Attach(1)

	if !sendUntil(t, g0p0, g0p1, 1, "before", 5*time.Second) {
		t.Fatal("initial delivery failed")
	}

	// Crash p1: both groups close; the shared endpoint (listener and
	// inbound connections) closes with the last one.
	g0p1.Close()
	g1p1.Close()

	// While down, sends are black-holed (p0's cached connection dies on
	// first failed write; redials are refused).
	g0p0.Send(1, []byte("lost"))

	// Recover p1: both groups re-attach; the listener rebinds.
	g0p1b, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatalf("recover g0: %v", err)
	}
	defer g0p1b.Close()
	g1p1b, err := mux.Net(1).Attach(1)
	if err != nil {
		t.Fatalf("recover g1: %v", err)
	}
	defer g1p1b.Close()

	if !sendUntil(t, g0p0, g0p1b, 1, "after-g0", 5*time.Second) {
		t.Fatal("g0 did not recover delivery after crash/recovery")
	}
	if !sendUntil(t, g1p0, g1p1b, 1, "after-g1", 5*time.Second) {
		t.Fatal("g1 did not recover delivery after crash/recovery")
	}
}

// TestMuxTCPOversizedFrameRejected dials the shared listener raw and
// announces a frame larger than transport.MaxFrame: the connection must be
// dropped without delivering anything, and legitimate mux traffic must
// keep flowing afterwards.
func TestMuxTCPOversizedFrameRejected(t *testing.T) {
	addrs := freeAddrs(t, 2)
	tcp := transport.NewTCP(addrs)
	mux := NewMux(tcp, 1)

	vp0, err := mux.Net(0).Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	defer vp0.Close()
	vp1, err := mux.Net(0).Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	defer vp1.Close()

	// Raw connection announcing an oversized frame, then (on the same
	// connection) a perfectly valid one — which must never arrive, because
	// the oversize drops the whole connection.
	conn, err := net.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0) // claims to be p0
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(transport.MaxFrame+1))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	valid := []byte{0x00, 0x00, 'n', 'o'} // tagged g0 frame "no"
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(valid)))
	conn.Write(hdr[:])
	conn.Write(valid)

	if pkt, ok := recvOne(t, vp1, 300*time.Millisecond); ok {
		t.Fatalf("frame after oversize was delivered: %q", pkt.Data)
	}

	// The endpoint survives the hostile connection: real traffic flows.
	if !sendUntil(t, vp0, vp1, 1, "still-alive", 5*time.Second) {
		t.Fatal("legitimate traffic stopped after oversized frame")
	}
}
