package group

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ids"
)

// Topology is the live shape of a sharded deployment: which ordering groups
// exist, where each group's local rounds sit in the global merged order, and
// which groups are sealed (retiring). It changes only through *ordered
// markers* — a SEAL marker ordered inside the retiring group, a JOIN marker
// ordered inside the anchor group — so every process observes the identical
// sequence of topology transitions at the identical positions of the merged
// order, without any coordination beyond the ordering protocol itself. Each
// transition bumps Epoch; the epoch number is what routers swap under and
// what the floor gossip carries so peers can detect stale views.
//
// # Global rounds
//
// A group's local round r maps to the global round Offset+r. Groups present
// at construction have Offset 0, which makes the global numbering coincide
// with the historical per-round interleave of the static merge. A group
// joining later is assigned Offset = anchorOffset + r_j + 1, where r_j is
// the anchor-group local round that delivered its JOIN marker: the merge
// frontier is <= the anchor's decided count, and the anchor's contribution
// passes the offset only by delivering the marker, so no cursor can emit a
// global round >= Offset before learning of the new group. That is the
// whole splice argument — determinism comes for free because the marker has
// one agreed position.
//
// # Sealing
//
// A SEAL marker delivered at local round r_s fixes the group's final round
// F = r_s + W, where W is the pipeline window bound carried in the marker.
// W must be >= the deepest proposal pipeline any process runs: a process
// proposing at round > F needs its window [k, k+depth) to reach past
// r_s + W, which forces k > r_s, which means it committed — and therefore
// delivered — the seal, so it proposes no application content. Rounds
// (r_s, F] may still decide (empty flush batches keep the frontier moving);
// rounds > F never carry messages. The group's frontier contribution caps
// at Offset+F+1 and the group leaves the merge entirely once drained.
type Topology struct {
	Epoch uint64
	Spans map[ids.GroupID]Span
}

// Span is one group's placement in the global round space.
type Span struct {
	Offset uint64 // global round = Offset + local round
	Sealed bool   // a SEAL marker has been delivered
	Final  uint64 // local final round (inclusive); valid when Sealed
}

// NewStaticTopology returns the epoch-0 topology of a deployment
// constructed with groups 0..g-1, all at offset 0.
func NewStaticTopology(groups int) *Topology {
	t := &Topology{Spans: make(map[ids.GroupID]Span, groups)}
	for g := 0; g < groups; g++ {
		t.Spans[ids.GroupID(g)] = Span{}
	}
	return t
}

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	c := &Topology{Epoch: t.Epoch, Spans: make(map[ids.GroupID]Span, len(t.Spans))}
	for g, s := range t.Spans {
		c.Spans[g] = s
	}
	return c
}

// Groups returns every known group (sealed included), ascending.
func (t *Topology) Groups() []ids.GroupID {
	out := make([]ids.GroupID, 0, len(t.Spans))
	for g := range t.Spans {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Active returns the unsealed groups, ascending: the set a router may place
// new keys on.
func (t *Topology) Active() []ids.GroupID {
	out := make([]ids.GroupID, 0, len(t.Spans))
	for g, s := range t.Spans {
		if !s.Sealed {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Anchor returns the lowest-numbered unsealed group — the group JOIN
// markers are ordered in — and false when every group is sealed.
func (t *Topology) Anchor() (ids.GroupID, bool) {
	a := t.Active()
	if len(a) == 0 {
		return 0, false
	}
	return a[0], true
}

// GlobalFinal returns the global round of a sealed group's final round.
// The second result is false for unsealed or unknown groups.
func (t *Topology) GlobalFinal(g ids.GroupID) (uint64, bool) {
	s, ok := t.Spans[g]
	if !ok || !s.Sealed {
		return 0, false
	}
	return s.Offset + s.Final, true
}

// ApplySeal records a SEAL marker delivered in group g at local round
// round, carrying window bound window. It returns true when the topology
// changed (duplicate seals of one group are inert: the first marker's
// position is authoritative).
func (t *Topology) ApplySeal(g ids.GroupID, round, window uint64) bool {
	s, ok := t.Spans[g]
	if !ok || s.Sealed {
		return false
	}
	s.Sealed = true
	s.Final = round + window
	t.Spans[g] = s
	t.Epoch++
	return true
}

// ApplyJoin records a JOIN marker for newGroup delivered in anchor group
// anchor at local round round. It returns true when the topology changed
// (duplicate joins of one group are inert).
func (t *Topology) ApplyJoin(anchor ids.GroupID, round uint64, newGroup ids.GroupID) bool {
	if _, ok := t.Spans[newGroup]; ok {
		return false
	}
	as, ok := t.Spans[anchor]
	if !ok {
		return false
	}
	t.Spans[newGroup] = Span{Offset: as.Offset + round + 1}
	t.Epoch++
	return true
}

// Encode serializes the topology (persisted by the sharded layer on every
// epoch change, and carried as the floor-gossip descriptor so recovering
// peers resynchronize the epoch without replaying markers that checkpoint
// folds may have erased).
func (t *Topology) Encode() []byte {
	gs := t.Groups()
	buf := make([]byte, 0, 16+len(gs)*24)
	buf = binary.AppendUvarint(buf, t.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(gs)))
	for _, g := range gs {
		s := t.Spans[g]
		buf = binary.AppendUvarint(buf, uint64(g))
		buf = binary.AppendUvarint(buf, s.Offset)
		var sealed uint64
		if s.Sealed {
			sealed = 1
		}
		buf = binary.AppendUvarint(buf, sealed)
		buf = binary.AppendUvarint(buf, s.Final)
	}
	return buf
}

// DecodeTopology parses an Encode result.
func DecodeTopology(b []byte) (*Topology, error) {
	epoch, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("group: topology: bad epoch")
	}
	b = b[n:]
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("group: topology: bad count")
	}
	b = b[n:]
	t := &Topology{Epoch: epoch, Spans: make(map[ids.GroupID]Span, cnt)}
	for i := uint64(0); i < cnt; i++ {
		var vals [4]uint64
		for j := range vals {
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("group: topology: truncated span")
			}
			vals[j], b = v, b[n:]
		}
		t.Spans[ids.GroupID(vals[0])] = Span{Offset: vals[1], Sealed: vals[2] != 0, Final: vals[3]}
	}
	return t, nil
}

// Topology change markers are ordinary broadcast payloads with a magic
// prefix, ordered through the group they reconfigure (SEAL) or through the
// anchor group (JOIN). The leading NUL byte keeps them out of the way of
// text protocols; the version digit leaves room to evolve the format.
var (
	sealMagic = []byte("\x00ab/seal1\x00")
	joinMagic = []byte("\x00ab/join1\x00")
)

// EncodeSealMarker builds the SEAL marker payload for a retiring group,
// embedding the pipeline window bound W (>= the deepest proposal pipeline
// of any process; rounds beyond r_s+W provably carry no application
// content).
func EncodeSealMarker(window uint64) []byte {
	buf := make([]byte, 0, len(sealMagic)+binary.MaxVarintLen64)
	buf = append(buf, sealMagic...)
	return binary.AppendUvarint(buf, window)
}

// DecodeSealMarker reports whether p is a SEAL marker and returns its
// window bound.
func DecodeSealMarker(p []byte) (window uint64, ok bool) {
	if len(p) <= len(sealMagic) || string(p[:len(sealMagic)]) != string(sealMagic) {
		return 0, false
	}
	w, n := binary.Uvarint(p[len(sealMagic):])
	if n <= 0 {
		return 0, false
	}
	return w, true
}

// EncodeJoinMarker builds the JOIN marker payload announcing newGroup. It
// is ordered in the anchor group; the delivery position fixes the new
// group's global-round offset.
func EncodeJoinMarker(newGroup ids.GroupID) []byte {
	buf := make([]byte, 0, len(joinMagic)+binary.MaxVarintLen64)
	buf = append(buf, joinMagic...)
	return binary.AppendUvarint(buf, uint64(newGroup))
}

// DecodeJoinMarker reports whether p is a JOIN marker and returns the
// joining group.
func DecodeJoinMarker(p []byte) (newGroup ids.GroupID, ok bool) {
	if len(p) <= len(joinMagic) || string(p[:len(joinMagic)]) != string(joinMagic) {
		return 0, false
	}
	g, n := binary.Uvarint(p[len(joinMagic):])
	if n <= 0 {
		return 0, false
	}
	return ids.GroupID(g), true
}

// IsMarker reports whether p is any topology marker payload. The sharded
// layer uses it to keep protocol-internal markers out of application
// delivery callbacks.
func IsMarker(p []byte) bool {
	if _, ok := DecodeSealMarker(p); ok {
		return true
	}
	_, ok := DecodeJoinMarker(p)
	return ok
}
