package group

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
)

// benchStream builds a stream + subscribed cursor over G groups with one
// pre-built delivery batch per group (reused every round — NoteRound
// retains but never mutates it).
func benchStream(b *testing.B, groups, perRound int) (*Stream, *Cursor, [][]core.Delivery) {
	b.Helper()
	st := NewStream(groups)
	seqs := make([]Sequence, groups)
	for g := range seqs {
		seqs[g] = Sequence{Group: ids.GroupID(g)}
	}
	cur, err := st.Subscribe(func() ([]Sequence, error) { return seqs, nil })
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][]core.Delivery, groups)
	for g := range batches {
		for i := 0; i < perRound; i++ {
			batches[g] = append(batches[g], core.Delivery{
				Msg:   msg.Message{ID: ids.MsgID{Sender: ids.ProcessID(g), Incarnation: 1, Seq: uint64(i + 1)}},
				Group: ids.GroupID(g),
			})
		}
	}
	return st, cur, batches
}

// BenchmarkCursorAdvanceRound measures the streaming hot path: every
// group commits one round and the cursor drains the completed round —
// O(groups log groups) per advance, compared against the batch recompute
// below.
func BenchmarkCursorAdvanceRound(b *testing.B) {
	for _, groups := range []int{4, 16} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			st, cur, batches := benchStream(b, groups, 4)
			var buf []core.Delivery
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round := uint64(i)
				for g := 0; g < groups; g++ {
					st.NoteRound(ids.GroupID(g), round, batches[g])
				}
				var err error
				buf, err = cur.Next(buf[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCursorPollEmpty measures the no-new-round poll: a consumer
// checking for output when nothing completed must not allocate.
func BenchmarkCursorPollEmpty(b *testing.B) {
	_, cur, _ := benchStream(b, 8, 4)
	var buf []core.Delivery
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = cur.Next(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchMergeRecompute is the cost the cursor replaces: one full
// batch Merge over the same history the cursor advances through
// incrementally. At R rounds of history each call is O(R x groups), so
// per-round consumption via repeated recomputes is quadratic where the
// cursor is linear; E18 reports the end-to-end ratio.
func BenchmarkBatchMergeRecompute(b *testing.B) {
	for _, rounds := range []int{64, 512} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			const groups = 4
			seqs := make([]Sequence, groups)
			for g := range seqs {
				s := Sequence{Group: ids.GroupID(g), Rounds: uint64(rounds)}
				var pos uint64
				for r := 0; r < rounds; r++ {
					for i := 0; i < 4; i++ {
						s.Deliveries = append(s.Deliveries, core.Delivery{
							Msg:   msg.Message{ID: ids.MsgID{Sender: ids.ProcessID(g), Incarnation: 1, Seq: uint64(r*4 + i + 1)}},
							Group: ids.GroupID(g),
							Round: uint64(r),
							Pos:   pos,
						})
						pos++
					}
				}
				seqs[g] = s
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if m, _, _ := Merge(seqs); len(m) == 0 {
					b.Fatal("empty merge")
				}
			}
		})
	}
}

// TestCursorEmptyPollZeroAllocs enforces the zero-allocation contract of
// the no-new-round poll (the benchmark reports it; this fails CI if it
// regresses).
func TestCursorEmptyPollZeroAllocs(t *testing.T) {
	st := NewStream(8)
	seqs := make([]Sequence, 8)
	for g := range seqs {
		seqs[g] = Sequence{Group: ids.GroupID(g)}
	}
	cur, err := st.Subscribe(func() ([]Sequence, error) { return seqs, nil })
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]core.Delivery, 0, 16)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = cur.Next(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("empty poll allocates %.1f objects/op; want 0", allocs)
	}
}
