package group

import (
	"sync"

	"repro/internal/core"
)

// PushCursor is the push-mode twin of Cursor: the same merged cross-group
// sequence, delivered over a bounded channel by one adapter goroutine
// instead of drained by polling. The channel is the backpressure boundary
// — when the consumer stops reading, the adapter blocks on the send, stops
// draining the underlying cursor, and new rounds simply accumulate in the
// cursor's per-round buffers (exactly the memory behavior of an undrained
// poll cursor; nothing is dropped).
//
// The channel closes when the merge can no longer continue: after Close,
// or once the underlying cursor lags behind a state transfer
// (ErrCursorLagged). Err distinguishes the two — nil after a plain Close,
// the terminal error otherwise.
type PushCursor struct {
	c    *Cursor
	ch   chan core.Delivery
	done chan struct{}

	closeOnce sync.Once

	mu  sync.Mutex
	err error
}

// SubscribePush registers a push-mode subscription: a Cursor (seeded from
// snapshot exactly like Subscribe) plus an adapter goroutine forwarding
// every merged delivery to a channel of the given capacity (minimum 1).
// See Stream.Subscribe for the snapshot contract and PushCursor for the
// backpressure and termination semantics.
func (s *Stream) SubscribePush(snapshot func() ([]Sequence, error), buf int) (*PushCursor, error) {
	c, err := s.Subscribe(snapshot)
	if err != nil {
		return nil, err
	}
	if buf < 1 {
		buf = 1
	}
	p := &PushCursor{
		c:    c,
		ch:   make(chan core.Delivery, buf),
		done: make(chan struct{}),
	}
	wake := make(chan struct{}, 1)
	s.mu.Lock()
	c.wake = wake
	s.mu.Unlock()
	go p.run(wake)
	return p, nil
}

// run drains the cursor into the channel until the cursor dies or the
// consumer closes. It owns the channel: only run closes it, so a consumer
// ranging over C never reads from a closed-by-someone-else channel.
func (p *PushCursor) run(wake chan struct{}) {
	defer close(p.ch)
	var buf []core.Delivery
	for {
		var err error
		buf, err = p.c.Next(buf[:0])
		if err != nil {
			// ErrCursorClosed after our own Close is a clean shutdown, not
			// a failure; anything else (lag) is terminal and surfaced.
			select {
			case <-p.done:
			default:
				p.mu.Lock()
				p.err = err
				p.mu.Unlock()
			}
			return
		}
		for _, d := range buf {
			select {
			case p.ch <- d: // consumer slow => block here: backpressure
			case <-p.done:
				return
			}
		}
		select {
		case <-wake:
		case <-p.done:
			return
		}
	}
}

// C is the delivery channel: the merged sequence in merge order, closed on
// Close or on a terminal cursor error (check Err after the close).
func (p *PushCursor) C() <-chan core.Delivery { return p.ch }

// Err returns the terminal error after C closed: nil for a consumer Close,
// ErrCursorLagged (wrapped) when a state transfer outran the merge.
func (p *PushCursor) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Emitted returns the underlying cursor's emit frontier (rounds fully
// handed to the adapter; some may still be queued in the channel).
func (p *PushCursor) Emitted() uint64 { return p.c.Emitted() }

// Close stops the adapter and unsubscribes from the Stream. Idempotent;
// safe concurrently with channel reads (C closes shortly after).
func (p *PushCursor) Close() {
	p.closeOnce.Do(func() {
		close(p.done)
		p.c.Close()
	})
}
