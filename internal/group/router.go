package group

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"repro/internal/ids"
)

// Router places a broadcast key onto the ordering group that will
// serialize it. Placement is a pure load-balancing/affinity decision —
// safety never depends on it — but two properties matter:
//
//   - keys that must be mutually ordered must map to the same group
//     (within a group the full total order holds; across groups it does
//     not, unless the merged sequence is consumed);
//   - a deterministic router (Hash) gives every process the same
//     placement, so any replica can route a key without coordination.
//
// Route must be safe for concurrent use.
type Router interface {
	Route(key []byte) ids.GroupID
}

// RouterFunc adapts a function to the Router interface (explicit custom
// placement).
type RouterFunc func(key []byte) ids.GroupID

// Route implements Router.
func (f RouterFunc) Route(key []byte) ids.GroupID { return f(key) }

// hashRouter is a consistent-hash ring: each group owns vnodesPerGroup
// points on a 64-bit ring and a key belongs to the group owning the first
// point at or after the key's hash. Placement is a pure function of (key,
// groups) — identical at every process — and adding or removing a group
// moves only ~1/G of the keyspace, which keeps key→group affinity stable
// across resharding.
type hashRouter struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	group ids.GroupID
}

const vnodesPerGroup = 160

// NewHashRouter returns the default deterministic consistent-hash router
// over groups ordering groups.
func NewHashRouter(groups int) Router {
	if groups < 1 {
		groups = 1
	}
	points := make([]ringPoint, 0, groups*vnodesPerGroup)
	for g := 0; g < groups; g++ {
		for v := 0; v < vnodesPerGroup; v++ {
			points = append(points, ringPoint{
				hash:  hash64(fmt.Appendf(nil, "g%d/v%d", g, v)),
				group: ids.GroupID(g),
			})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	return &hashRouter{points: points}
}

// NewHashRouterOver returns the consistent-hash router over an explicit
// set of group IDs — the live-resharding constructor. Each group's vnode
// labels are keyed by its actual GroupID, so the ring over {0..G-1} is
// byte-identical to NewHashRouter(G)'s, and growing or retiring one group
// leaves every other group's points untouched: only the ~1/G of the
// keyspace owned by the changed group moves (the keyspace-stability
// property the router tests pin down).
func NewHashRouterOver(groups []ids.GroupID) Router {
	if len(groups) == 0 {
		return NewHashRouter(1)
	}
	points := make([]ringPoint, 0, len(groups)*vnodesPerGroup)
	for _, g := range groups {
		for v := 0; v < vnodesPerGroup; v++ {
			points = append(points, ringPoint{
				hash:  hash64(fmt.Appendf(nil, "g%d/v%d", g, v)),
				group: g,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	return &hashRouter{points: points}
}

func hash64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: FNV alone disperses the short,
// near-identical vnode labels poorly around the ring (clustered points
// starve groups); a strong bit-mix restores uniformity.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Route implements Router.
func (r *hashRouter) Route(key []byte) ids.GroupID {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the ring
	}
	return r.points[i].group
}

// roundRobinRouter spreads keys evenly regardless of content. Placement is
// NOT deterministic across processes (each router instance has its own
// counter), so it suits workloads with no cross-key ordering needs.
type roundRobinRouter struct {
	groups uint64
	next   atomic.Uint64
}

// NewRoundRobinRouter returns a router that cycles through the groups.
func NewRoundRobinRouter(groups int) Router {
	if groups < 1 {
		groups = 1
	}
	return &roundRobinRouter{groups: uint64(groups)}
}

// Route implements Router; the key is ignored.
func (r *roundRobinRouter) Route([]byte) ids.GroupID {
	return ids.GroupID((r.next.Add(1) - 1) % r.groups)
}
