package group

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
)

// ErrCursorLagged is returned by Cursor.Next after the cursor missed
// rounds it can no longer obtain — a state transfer (§5.3) skipped over
// consensus instances wholesale, so their per-round interleave is gone.
// The consumer must resynchronize: drop the cursor, adopt the groups'
// base snapshots, and Subscribe a fresh cursor.
var ErrCursorLagged = errors.New("group: merge cursor lagged behind a state transfer; resubscribe")

// ErrCursorClosed is returned by Cursor.Next after Close.
var ErrCursorClosed = errors.New("group: merge cursor closed")

// minTracker maintains the minimum of a fixed set of monotonically
// non-decreasing counters with an indexed min-heap: bumping one counter
// costs O(log n), reading the minimum O(1).
type minTracker struct {
	vals []uint64
	heap []int // heap of counter indices; heap[0] holds a minimal value
	pos  []int // counter index -> heap position
}

func newMinTracker(n int) *minTracker {
	t := &minTracker{
		vals: make([]uint64, n),
		heap: make([]int, n),
		pos:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.heap[i] = i
		t.pos[i] = i
	}
	return t
}

func (t *minTracker) get(i int) uint64 { return t.vals[i] }

func (t *minTracker) min() uint64 {
	if len(t.heap) == 0 {
		return 0
	}
	return t.vals[t.heap[0]]
}

// bump raises counter i to v (values never decrease) and restores heap
// order by sifting the entry down.
func (t *minTracker) bump(i int, v uint64) {
	if v <= t.vals[i] {
		return
	}
	t.vals[i] = v
	j := t.pos[i]
	n := len(t.heap)
	for {
		l, r := 2*j+1, 2*j+2
		small := j
		if l < n && t.vals[t.heap[l]] < t.vals[t.heap[small]] {
			small = l
		}
		if r < n && t.vals[t.heap[r]] < t.vals[t.heap[small]] {
			small = r
		}
		if small == j {
			return
		}
		t.heap[j], t.heap[small] = t.heap[small], t.heap[j]
		t.pos[t.heap[j]] = j
		t.pos[t.heap[small]] = small
		j = small
	}
}

// Stream tracks the per-group round frontiers of one sharded process and
// fans per-round commit events out to subscribed Cursors. It is the glue
// between the core layer's OnRound hook and the streaming merge:
//
//   - every group of the process routes its core.Config.OnRound callback
//     into NoteRound, which advances that group's frontier and feeds the
//     round to every cursor;
//   - Frontier returns the process-wide merge frontier (the highest round
//     every group has fully committed) and doubles as the
//     core.Config.MergeFloor hook: checkpoint folds gated by it never
//     destroy per-round delivery metadata a merge consumer still needs,
//     which is what makes checkpointing legal in merged mode;
//   - Subscribe seeds a Cursor from a snapshot of the per-group sequences
//     and then keeps it advancing incrementally, so the global sequence is
//     delivered online instead of recomputed from scratch per Merge call.
//
// Rounds arrive in order per group (the sequencer commits strictly in
// round order); re-commits during a recovery replay are deduplicated by
// round number. A Stream outlives process incarnations — the same Stream
// keeps serving across crash/recover cycles of the groups feeding it.
type Stream struct {
	mu      sync.Mutex
	groups  int
	decided *minTracker // per group: rounds committed (next round index)
	cursors map[*Cursor]struct{}
	fl      *obs.Recorder // cursor-lag anomaly events (may be nil)
}

// NewStream creates a Stream for a process hosting the given number of
// ordering groups.
func NewStream(groups int) *Stream {
	return &Stream{
		groups:  groups,
		decided: newMinTracker(groups),
		cursors: make(map[*Cursor]struct{}),
	}
}

// Groups returns the number of ordering groups tracked.
func (s *Stream) Groups() int { return s.groups }

// SetObs routes cursor-lag anomalies to the plane's flight recorder — a
// lagged merge cursor is exactly the "consumer silently fell behind a
// state transfer" failure a post-mortem needs a timestamp for. Nil is a
// no-op.
func (s *Stream) SetObs(p *obs.Plane) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.fl = p.Flight()
	s.mu.Unlock()
}

// NoteRound records that group g committed round with the given (possibly
// empty) batch of new deliveries, and fans the event out to every
// subscribed cursor. Wire it as every group's core.Config.OnRound hook.
// The deliveries slice is retained (shared by all cursors) and must not be
// mutated by the caller. Out-of-range groups are ignored.
func (s *Stream) NoteRound(g ids.GroupID, round uint64, deliveries []core.Delivery) {
	gi := int(g)
	if gi < 0 || gi >= s.groups {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decided.bump(gi, round+1)
	for c := range s.cursors {
		c.offerLocked(g, round, deliveries)
	}
}

// NoteSkip records that group g's round counter jumped to nextRound
// without committing the rounds in between — a state-transfer adoption
// whose per-round structure was folded away at the sender. Wire it as
// every group's core.Config.OnRoundSkip hook. Cursors that had not passed
// the skipped range become lagged immediately (instead of waiting forever
// for rounds that will never be offered); fresh subscriptions seed from
// the adopted state and are unaffected.
func (s *Stream) NoteSkip(g ids.GroupID, nextRound uint64) {
	gi := int(g)
	if gi < 0 || gi >= s.groups {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decided.bump(gi, nextRound)
	for c := range s.cursors {
		c.skipLocked(g, nextRound)
	}
}

// Frontier returns the process-wide merge frontier: the highest round R
// such that every group has committed all rounds below R, as observed
// through NoteRound. It under-reports momentarily (events trail the
// commits they describe), which is the safe direction for its use as the
// core.Config.MergeFloor hook — a checkpoint never folds a round the
// merge has not passed.
func (s *Stream) Frontier() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decided.min()
}

// Decided returns group g's committed-round count as observed through
// NoteRound (observability).
func (s *Stream) Decided(g ids.GroupID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(g) < 0 || int(g) >= s.groups {
		return 0
	}
	return s.decided.get(int(g))
}

// Subscribe registers a new streaming cursor. snapshot must return the
// current per-group sequences (one per group, any order, every group
// present) — it is called after the cursor is registered, so any round
// committed concurrently is either in the snapshot or in the cursor's
// event backlog, never lost. The returned cursor's output starts at the
// snapshot's merge base (the highest folded round) and is byte-identical
// to what batch Merge produces from that base onward.
func (s *Stream) Subscribe(snapshot func() ([]Sequence, error)) (*Cursor, error) {
	c := &Cursor{
		stream: s,
		next:   newMinTracker(s.groups),
		pend:   make([]map[uint64][]core.Delivery, s.groups),
	}
	for g := range c.pend {
		c.pend[g] = make(map[uint64][]core.Delivery)
	}
	s.mu.Lock()
	s.cursors[c] = struct{}{} // buffering: events accumulate in c.backlog
	s.mu.Unlock()

	seqs, err := snapshot() // outside s.mu: snapshot takes protocol locks
	if err != nil {
		s.mu.Lock()
		delete(s.cursors, c)
		s.mu.Unlock()
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := c.seedLocked(seqs); err != nil {
		delete(s.cursors, c)
		return nil, err
	}
	return c, nil
}

// Cursor is one subscriber's incremental view of the merged cross-group
// sequence: per-group round frontiers plus the buffered complete rounds,
// advanced by the Stream's events and drained with Next. Creating a
// cursor costs one snapshot; afterwards each round advances in
// O(groups log groups) and a poll that finds no new complete round
// allocates nothing.
//
// A cursor is volatile consumer state: it survives crash/recovery of the
// groups feeding it (recovery replay re-offers rounds, which deduplicate),
// but a state transfer that skips rounds leaves it permanently lagged
// (ErrCursorLagged) — resubscribe to resynchronize.
type Cursor struct {
	stream *Stream

	// All fields below are guarded by stream.mu.
	start     uint64      // first round the cursor covers
	emit      uint64      // next round to emit
	next      *minTracker // per group: next round to accept from events
	pend      []map[uint64][]core.Delivery
	backlog   []roundEvent // events buffered while seeding
	seeded    bool
	lagged    bool
	lagDetail string // first gap observed, for diagnostics
	closed    bool

	// wake, when non-nil, is a capacity-1 signal channel poked on every
	// event the cursor absorbs — the push adapter parks on it instead of
	// polling Next. A full channel means a wake-up is already pending.
	wake chan struct{}
}

type roundEvent struct {
	g     ids.GroupID
	round uint64 // nextRound when skip is set
	ds    []core.Delivery
	skip  bool
}

// pokeLocked wakes a parked push adapter (no-op for poll cursors).
// stream.mu held.
func (c *Cursor) pokeLocked() {
	if c.wake == nil {
		return
	}
	select {
	case c.wake <- struct{}{}:
	default: // a wake-up is already pending
	}
}

// offerLocked feeds one round event. stream.mu held.
func (c *Cursor) offerLocked(g ids.GroupID, round uint64, ds []core.Delivery) {
	if c.closed {
		return
	}
	if !c.seeded {
		c.backlog = append(c.backlog, roundEvent{g: g, round: round, ds: ds})
		return
	}
	c.applyLocked(g, round, ds)
	c.pokeLocked()
}

// skipLocked handles a round-counter jump. stream.mu held.
func (c *Cursor) skipLocked(g ids.GroupID, nextRound uint64) {
	if c.closed {
		return
	}
	if !c.seeded {
		c.backlog = append(c.backlog, roundEvent{g: g, round: nextRound, skip: true})
		return
	}
	defer c.pokeLocked()
	gi := int(g)
	if want := c.next.get(gi); nextRound > want {
		if !c.lagged {
			c.lagDetail = fmt.Sprintf("group %v adopted a state transfer skipping to round %d, expected %d", g, nextRound, want)
			c.stream.fl.Event(obs.EvCursorLag, g, nextRound, int64(want), 0, "state transfer skipped ahead of cursor")
		}
		c.lagged = true
	}
}

func (c *Cursor) applyLocked(g ids.GroupID, round uint64, ds []core.Delivery) {
	gi := int(g)
	want := c.next.get(gi)
	switch {
	case round < want:
		// Duplicate: a recovery replay re-committing rounds already seen.
	case round > want:
		// Gap: a state transfer skipped rounds wholesale; their interleave
		// is unrecoverable for this cursor.
		if !c.lagged {
			c.lagDetail = fmt.Sprintf("group %v offered round %d, expected %d", g, round, want)
			c.stream.fl.Event(obs.EvCursorLag, g, round, int64(want), 0, "round gap at cursor")
		}
		c.lagged = true
	default:
		if len(ds) > 0 && round >= c.emit {
			c.pend[gi][round] = ds
		}
		c.next.bump(gi, round+1)
	}
}

// seedLocked installs the subscription snapshot: the cursor starts at the
// snapshot's merge base, adopts each group's suffix below its round
// counter, and then replays the backlog of events that raced the
// snapshot. stream.mu held.
func (c *Cursor) seedLocked(seqs []Sequence) error {
	if len(seqs) != c.stream.groups {
		return fmt.Errorf("group: subscribe snapshot has %d sequences; stream tracks %d groups", len(seqs), c.stream.groups)
	}
	bySeen := make([]bool, c.stream.groups)
	c.start = MergeBase(seqs)
	c.emit = c.start
	for _, sq := range seqs {
		gi := int(sq.Group)
		if gi < 0 || gi >= c.stream.groups || bySeen[gi] {
			return fmt.Errorf("group: subscribe snapshot has bad or duplicate group %v", sq.Group)
		}
		bySeen[gi] = true
		for _, d := range sq.Deliveries {
			if d.Round >= c.start && d.Round < sq.Rounds {
				d.Group = sq.Group
				c.pend[gi][d.Round] = append(c.pend[gi][d.Round], d)
			}
		}
		c.next.bump(gi, sq.Rounds)
	}
	c.seeded = true
	for _, e := range c.backlog {
		if e.skip {
			c.skipLocked(e.g, e.round)
		} else {
			c.applyLocked(e.g, e.round, e.ds)
		}
	}
	c.backlog = nil
	return nil
}

// Next appends every merged delivery that has become available since the
// last call to buf and returns the extended slice: all rounds up to the
// current merge frontier, interleaved exactly as batch Merge orders them
// (rounds ascending, groups ascending within a round). Passing a reused
// buffer makes the no-new-round case allocation-free. After
// ErrCursorLagged the cursor is permanently stale; resubscribe.
func (c *Cursor) Next(buf []core.Delivery) ([]core.Delivery, error) {
	s := c.stream
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed {
		return buf, ErrCursorClosed
	}
	if c.lagged {
		return buf, fmt.Errorf("%w (%s)", ErrCursorLagged, c.lagDetail)
	}
	for c.emit < c.next.min() {
		for g := 0; g < s.groups; g++ {
			if ds, ok := c.pend[g][c.emit]; ok {
				buf = append(buf, ds...)
				delete(c.pend[g], c.emit)
			}
		}
		c.emit++
	}
	return buf, nil
}

// StartRound returns the first round the cursor covers (the merge base of
// its subscription snapshot).
func (c *Cursor) StartRound() uint64 {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	return c.start
}

// Emitted returns the cursor's emit frontier: every round below it has
// been returned by Next.
func (c *Cursor) Emitted() uint64 {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	return c.emit
}

// Lagged reports whether the cursor missed rounds it cannot recover
// (see ErrCursorLagged).
func (c *Cursor) Lagged() bool {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	return c.lagged
}

// Close unsubscribes the cursor from its Stream.
func (c *Cursor) Close() {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	c.closed = true
	delete(c.stream.cursors, c)
	c.pokeLocked() // a parked push adapter must notice the close
}
