package group

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
)

// ErrCursorLagged is returned by Cursor.Next after the cursor missed
// rounds it can no longer obtain — a state transfer (§5.3) skipped over
// consensus instances wholesale, so their per-round interleave is gone.
// The consumer must resynchronize: drop the cursor, adopt the groups'
// base snapshots, and Subscribe a fresh cursor.
var ErrCursorLagged = errors.New("group: merge cursor lagged behind a state transfer; resubscribe")

// ErrCursorClosed is returned by Cursor.Next after Close.
var ErrCursorClosed = errors.New("group: merge cursor closed")

// noRound is the frontier contribution of a drained (sealed and fully
// decided) group: it no longer gates the merge.
const noRound = math.MaxUint64

// Stream tracks the per-group round frontiers of one sharded process and
// fans per-round commit events out to subscribed Cursors. It is the glue
// between the core layer's OnRound hook and the streaming merge:
//
//   - every group of the process routes its core.Config.OnRound callback
//     into NoteRound, which advances that group's frontier and feeds the
//     round to every cursor;
//   - Frontier returns the process-wide merge frontier in global rounds
//     (the highest global round every live group has fully committed) and —
//     localized per group with LocalFloor — drives the core.Config.MergeFloor
//     hook: checkpoint folds gated by it never destroy per-round delivery
//     metadata a merge consumer still needs, which is what makes
//     checkpointing legal in merged mode;
//   - Subscribe seeds a Cursor from a snapshot of the per-group sequences
//     and then keeps it advancing incrementally, so the global sequence is
//     delivered online instead of recomputed from scratch per Merge call.
//
// The Stream also owns the process's live Topology: NoteRound scans every
// committed batch for SEAL/JOIN markers and applies the transition the
// moment the marker's round commits, so the topology is a deterministic
// function of the groups' agreed sequences — every process transitions at
// the identical position of the merged order. Groups that start ordering
// before their JOIN marker has committed (the new node races the marker)
// are buffered and spliced in when the marker fixes their offset.
//
// Rounds arrive in order per group (the sequencer commits strictly in
// round order); re-commits during a recovery replay are deduplicated by
// round number. A Stream outlives process incarnations — the same Stream
// keeps serving across crash/recover cycles of the groups feeding it.
type Stream struct {
	mu      sync.Mutex
	topo    *Topology
	sorted  []ids.GroupID // cache of topo.Groups()
	decided map[ids.GroupID]uint64
	durable map[ids.GroupID]uint64       // last checkpointed round per group
	pending map[ids.GroupID][]roundEvent // events of groups awaiting their JOIN
	cursors map[*Cursor]struct{}
	fl      *obs.Recorder // cursor-lag anomaly events (may be nil)
	onTopo  func(*Topology)
}

// NewStream creates a Stream for a process hosting the given number of
// ordering groups (the static epoch-0 topology: groups 0..n-1, offset 0).
func NewStream(groups int) *Stream {
	return NewStreamTopology(NewStaticTopology(groups))
}

// NewStreamTopology creates a Stream over an explicit topology — the
// restart path of a resharded deployment, which reloads the persisted
// topology instead of replaying markers that checkpoint folds may have
// erased.
func NewStreamTopology(t *Topology) *Stream {
	s := &Stream{
		topo:    t.Clone(),
		decided: make(map[ids.GroupID]uint64),
		durable: make(map[ids.GroupID]uint64),
		pending: make(map[ids.GroupID][]roundEvent),
		cursors: make(map[*Cursor]struct{}),
	}
	s.sorted = s.topo.Groups()
	return s
}

// Groups returns the number of ordering groups tracked (sealed included).
func (s *Stream) Groups() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.topo.Spans)
}

// Topology returns a copy of the current topology.
func (s *Stream) Topology() *Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.topo.Clone()
}

// Epoch returns the current topology epoch.
func (s *Stream) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.topo.Epoch
}

// SetOnTopology registers a hook invoked (with a private copy, outside the
// stream lock) after every topology transition — the sharded layer uses it
// to persist the topology and swap the router ring.
func (s *Stream) SetOnTopology(fn func(*Topology)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onTopo = fn
}

// SetObs routes cursor-lag anomalies to the plane's flight recorder — a
// lagged merge cursor is exactly the "consumer silently fell behind a
// state transfer" failure a post-mortem needs a timestamp for. Nil is a
// no-op.
func (s *Stream) SetObs(p *obs.Plane) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.fl = p.Flight()
	s.mu.Unlock()
}

// contribution returns group g's frontier contribution in global rounds
// given its decided counter: offset+decided for live groups, noRound for
// drained ones. s.mu held.
func contribution(sp Span, decided uint64) uint64 {
	if sp.Sealed && decided >= sp.Final+1 {
		return noRound
	}
	return sp.Offset + decided
}

// frontierLocked computes the global merge frontier. s.mu held.
func (s *Stream) frontierLocked() uint64 {
	f := uint64(noRound)
	for g, sp := range s.topo.Spans {
		if c := contribution(sp, s.decided[g]); c < f {
			f = c
		}
	}
	if f == noRound {
		// All groups drained (or none): nothing gates the merge anymore;
		// report the highest point any group reached so floors stay sane.
		f = 0
		for g, sp := range s.topo.Spans {
			if c := sp.Offset + s.decided[g]; c > f {
				f = c
			}
		}
	}
	return f
}

// NoteRound records that group g committed round with the given (possibly
// empty) batch of new deliveries, and fans the event out to every
// subscribed cursor. Wire it as every group's core.Config.OnRound hook.
// The deliveries slice is retained (shared by all cursors) and must not be
// mutated by the caller. Rounds of groups the topology does not know yet
// are buffered until a JOIN marker splices the group in; negative group
// IDs are ignored.
func (s *Stream) NoteRound(g ids.GroupID, round uint64, deliveries []core.Delivery) {
	if g < 0 {
		return
	}
	s.mu.Lock()
	topoChanged := s.noteRoundLocked(g, round, deliveries)
	var snap *Topology
	var cb func(*Topology)
	if topoChanged {
		snap, cb = s.topo.Clone(), s.onTopo
	}
	s.mu.Unlock()
	if topoChanged && cb != nil {
		cb(snap)
	}
}

func (s *Stream) noteRoundLocked(g ids.GroupID, round uint64, deliveries []core.Delivery) bool {
	if _, known := s.topo.Spans[g]; !known {
		s.pending[g] = append(s.pending[g], roundEvent{g: g, round: round, ds: deliveries})
		return false
	}
	if round+1 > s.decided[g] {
		s.decided[g] = round + 1
	}
	for c := range s.cursors {
		c.offerLocked(g, round, deliveries)
	}
	// Scan the batch for topology markers; the marker's position in the
	// agreed sequence IS the coordination.
	changed := false
	for _, d := range deliveries {
		if w, ok := DecodeSealMarker(d.Msg.Payload); ok {
			if s.topo.ApplySeal(g, round, w) {
				changed = true
			}
		} else if ng, ok := DecodeJoinMarker(d.Msg.Payload); ok {
			if s.topo.ApplyJoin(g, round, ng) {
				changed = true
				s.spliceLocked(ng)
			}
		}
	}
	if changed {
		s.sorted = s.topo.Groups()
	}
	return changed
}

// spliceLocked replays the buffered pre-JOIN rounds of a freshly joined
// group through the normal event path. s.mu held.
func (s *Stream) spliceLocked(g ids.GroupID) {
	buffered := s.pending[g]
	delete(s.pending, g)
	for _, e := range buffered {
		if e.round+1 > s.decided[g] {
			s.decided[g] = e.round + 1
		}
		for c := range s.cursors {
			c.offerLocked(g, e.round, e.ds)
		}
	}
}

// NoteSkip records that group g's round counter jumped to nextRound
// without committing the rounds in between — a state-transfer adoption
// whose per-round structure was folded away at the sender. Wire it as
// every group's core.Config.OnRoundSkip hook. Cursors that had not passed
// the skipped range become lagged immediately (instead of waiting forever
// for rounds that will never be offered); fresh subscriptions seed from
// the adopted state and are unaffected.
func (s *Stream) NoteSkip(g ids.GroupID, nextRound uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.topo.Spans[g]; !known {
		s.pending[g] = append(s.pending[g], roundEvent{g: g, round: nextRound, skip: true})
		return
	}
	if nextRound > s.decided[g] {
		s.decided[g] = nextRound
	}
	for c := range s.cursors {
		c.skipLocked(g, nextRound)
	}
}

// AdoptTopology installs a newer topology learned out-of-band (the
// floor-gossip descriptor): a process whose state transfer skipped the
// marker rounds resynchronizes its epoch here. Older or equal epochs are
// ignored. The topology is a pure function of the agreed markers, so any
// two descriptors with one epoch are identical.
func (s *Stream) AdoptTopology(t *Topology) bool {
	s.mu.Lock()
	if t == nil || t.Epoch <= s.topo.Epoch {
		s.mu.Unlock()
		return false
	}
	s.topo = t.Clone()
	s.sorted = s.topo.Groups()
	// Splice any buffered groups the new topology legitimizes.
	for g := range s.pending {
		if _, known := s.topo.Spans[g]; known {
			s.spliceLocked(g)
		}
	}
	snap, cb := s.topo.Clone(), s.onTopo
	s.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
	return true
}

// Frontier returns the process-wide merge frontier in global rounds: the
// highest global round R such that every live group has committed all its
// rounds below R, as observed through NoteRound. Drained groups (sealed,
// counter past their final round) no longer gate it. It under-reports
// momentarily (events trail the commits they describe), which is the safe
// direction for its use as a merge floor — a checkpoint never folds a
// round the merge has not passed.
func (s *Stream) Frontier() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frontierLocked()
}

// NoteDurable records that group g durably checkpointed k local rounds —
// the prefix this process can recover from its own stable storage. Wire it
// as every group's core.Config.OnCheckpoint hook.
func (s *Stream) NoteDurable(g ids.GroupID, k uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k > s.durable[g] {
		s.durable[g] = k
	}
}

// DurableFrontier computes the global merge frontier over the DURABLE
// per-group rounds (NoteDurable) instead of the in-memory decided ones:
// the highest global round such that every round below it survives a
// crash of this process. This is what the cluster-floor gossip reports —
// a peer that discards Consensus state below the cluster-wide minimum of
// these can never strand a recovering process, because recovery restores
// at least this much locally (the in-memory frontier would overstate it
// by the rounds committed since the last checkpoint). Groups this process
// knows from the topology but has not checkpointed yet contribute their
// span offset, which is exactly the "protect the whole span" conservative
// bound for freshly spliced groups.
func (s *Stream) DurableFrontier() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := uint64(noRound)
	for g, sp := range s.topo.Spans {
		if c := contribution(sp, s.durable[g]); c < f {
			f = c
		}
	}
	if f == noRound {
		f = 0
		for g, sp := range s.topo.Spans {
			if c := sp.Offset + s.durable[g]; c > f {
				f = c
			}
		}
	}
	return f
}

// LocalFloor translates a global merge floor into group g's local rounds,
// clamped to the group's span — the per-group core.Config.MergeFloor value
// derived from a global (possibly cluster-wide) floor.
func (s *Stream) LocalFloor(g ids.GroupID, global uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.topo.Spans[g]
	if !ok || global <= sp.Offset {
		return 0
	}
	local := global - sp.Offset
	if sp.Sealed && local > sp.Final+1 {
		local = sp.Final + 1
	}
	return local
}

// Decided returns group g's committed-round count (local rounds) as
// observed through NoteRound (observability).
func (s *Stream) Decided(g ids.GroupID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decided[g]
}

// Drained reports whether group g is sealed and has decided every round up
// to its final bound — the point after which its node can be retired.
func (s *Stream) Drained(g ids.GroupID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.topo.Spans[g]
	return ok && sp.Sealed && s.decided[g] >= sp.Final+1
}

// Subscribe registers a new streaming cursor. snapshot must return the
// current per-group sequences (one per live group, any order; drained
// groups may be omitted, groups unknown to the topology are ignored) — it
// is called after the cursor is registered, so any round committed
// concurrently is either in the snapshot or in the cursor's event backlog,
// never lost. The returned cursor's output starts at the snapshot's merge
// base (the highest folded global round) and is byte-identical to what
// batch MergeT produces from that base onward.
func (s *Stream) Subscribe(snapshot func() ([]Sequence, error)) (*Cursor, error) {
	c := &Cursor{
		stream: s,
		next:   make(map[ids.GroupID]uint64),
		pend:   make(map[ids.GroupID]map[uint64][]core.Delivery),
	}
	s.mu.Lock()
	s.cursors[c] = struct{}{} // buffering: events accumulate in c.backlog
	s.mu.Unlock()

	seqs, err := snapshot() // outside s.mu: snapshot takes protocol locks
	if err != nil {
		s.mu.Lock()
		delete(s.cursors, c)
		s.mu.Unlock()
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := c.seedLocked(seqs); err != nil {
		delete(s.cursors, c)
		return nil, err
	}
	return c, nil
}

// Cursor is one subscriber's incremental view of the merged cross-group
// sequence: per-group global-round frontiers plus the buffered complete
// rounds, advanced by the Stream's events and drained with Next. Creating
// a cursor costs one snapshot; afterwards each round advances in O(groups)
// and a poll that finds no new complete round allocates nothing.
//
// A cursor is volatile consumer state: it survives crash/recovery of the
// groups feeding it (recovery replay re-offers rounds, which deduplicate)
// and topology changes (joins splice in at their marker position, drained
// groups stop gating emission), but a state transfer that skips rounds
// leaves it permanently lagged (ErrCursorLagged) — resubscribe to
// resynchronize.
type Cursor struct {
	stream *Stream

	// All fields below are guarded by stream.mu.
	start     uint64                     // first global round the cursor covers
	emit      uint64                     // next global round to emit
	next      map[ids.GroupID]uint64     // per group: next GLOBAL round to accept
	pend      map[ids.GroupID]map[uint64][]core.Delivery // keyed by global round
	backlog   []roundEvent               // events buffered while seeding
	seeded    bool
	lagged    bool
	lagDetail string // first gap observed, for diagnostics
	closed    bool

	// wake, when non-nil, is a capacity-1 signal channel poked on every
	// event the cursor absorbs — the push adapter parks on it instead of
	// polling Next. A full channel means a wake-up is already pending.
	wake chan struct{}
}

type roundEvent struct {
	g     ids.GroupID
	round uint64 // nextRound when skip is set
	ds    []core.Delivery
	skip  bool
}

// pokeLocked wakes a parked push adapter (no-op for poll cursors).
// stream.mu held.
func (c *Cursor) pokeLocked() {
	if c.wake == nil {
		return
	}
	select {
	case c.wake <- struct{}{}:
	default: // a wake-up is already pending
	}
}

// offerLocked feeds one round event (local round coordinates; the group is
// known to the topology). stream.mu held.
func (c *Cursor) offerLocked(g ids.GroupID, round uint64, ds []core.Delivery) {
	if c.closed {
		return
	}
	if !c.seeded {
		c.backlog = append(c.backlog, roundEvent{g: g, round: round, ds: ds})
		return
	}
	c.applyLocked(g, round, ds)
	c.pokeLocked()
}

// skipLocked handles a round-counter jump (local coordinates). stream.mu
// held.
func (c *Cursor) skipLocked(g ids.GroupID, nextRound uint64) {
	if c.closed {
		return
	}
	if !c.seeded {
		c.backlog = append(c.backlog, roundEvent{g: g, round: nextRound, skip: true})
		return
	}
	defer c.pokeLocked()
	sp := c.stream.topo.Spans[g]
	global := sp.Offset + nextRound
	if want := c.nextFor(g, sp); global > want {
		if !c.lagged {
			c.lagDetail = fmt.Sprintf("group %v adopted a state transfer skipping to round %d, expected %d", g, global, want)
			c.stream.fl.Event(obs.EvCursorLag, g, global, int64(want), 0, "state transfer skipped ahead of cursor")
		}
		c.lagged = true
	}
}

// nextFor returns the next global round the cursor accepts from g,
// lazily initializing a group that joined after the cursor was seeded.
// stream.mu held.
func (c *Cursor) nextFor(g ids.GroupID, sp Span) uint64 {
	w, ok := c.next[g]
	if !ok {
		w = sp.Offset
		if w < c.emit {
			// The cursor's emission already passed the group's splice
			// point: impossible for a marker-applied join (the frontier
			// cannot pass the offset before the marker commits), but an
			// adopted topology can land here after a state transfer.
			w = c.emit
		}
		c.next[g] = w
	}
	return w
}

func (c *Cursor) applyLocked(g ids.GroupID, round uint64, ds []core.Delivery) {
	sp, known := c.stream.topo.Spans[g]
	if !known {
		return
	}
	global := sp.Offset + round
	want := c.nextFor(g, sp)
	switch {
	case global < want:
		// Duplicate: a recovery replay re-committing rounds already seen.
	case global > want:
		// Gap: a state transfer skipped rounds wholesale; their interleave
		// is unrecoverable for this cursor.
		if !c.lagged {
			c.lagDetail = fmt.Sprintf("group %v offered round %d, expected %d", g, global, want)
			c.stream.fl.Event(obs.EvCursorLag, g, global, int64(want), 0, "round gap at cursor")
		}
		c.lagged = true
	default:
		if len(ds) > 0 && global >= c.emit {
			if sp.Offset != 0 {
				// Rewrite rounds into the global numbering on a private
				// copy — the event slice is shared with other cursors.
				cp := make([]core.Delivery, len(ds))
				copy(cp, ds)
				for i := range cp {
					cp[i].Round = global
				}
				ds = cp
			}
			bucket := c.pend[g]
			if bucket == nil {
				bucket = make(map[uint64][]core.Delivery)
				c.pend[g] = bucket
			}
			bucket[global] = ds
		}
		c.next[g] = global + 1
	}
}

// seedLocked installs the subscription snapshot: the cursor starts at the
// snapshot's global merge base, adopts each group's suffix below its round
// counter, and then replays the backlog of events that raced the
// snapshot. stream.mu held.
func (c *Cursor) seedLocked(seqs []Sequence) error {
	topo := c.stream.topo
	seen := make(map[ids.GroupID]bool, len(seqs))
	kept := seqs[:0:0]
	for _, sq := range seqs {
		if sq.Group < 0 {
			return fmt.Errorf("group: subscribe snapshot has bad group %v", sq.Group)
		}
		if seen[sq.Group] {
			return fmt.Errorf("group: subscribe snapshot has duplicate group %v", sq.Group)
		}
		seen[sq.Group] = true
		if _, known := topo.Spans[sq.Group]; !known {
			continue // racing its JOIN marker; spliced in later
		}
		kept = append(kept, sq)
	}
	for g, sp := range topo.Spans {
		if seen[g] {
			continue
		}
		if sp.Sealed {
			// A drained retired group may be absent (its node is gone);
			// treat it as fully decided so it never gates the cursor.
			c.next[g] = sp.Offset + sp.Final + 1
			continue
		}
		return fmt.Errorf("group: subscribe snapshot missing live group %v", g)
	}
	c.start = MergeBaseT(kept, topo)
	c.emit = c.start
	for _, sq := range kept {
		sp := topo.Spans[sq.Group]
		for _, d := range sq.Deliveries {
			global := sp.Offset + d.Round
			if global >= c.start && d.Round < sq.Rounds {
				d.Group = sq.Group
				d.Round = global
				bucket := c.pend[sq.Group]
				if bucket == nil {
					bucket = make(map[uint64][]core.Delivery)
					c.pend[sq.Group] = bucket
				}
				bucket[global] = append(bucket[global], d)
			}
		}
		if nxt := sp.Offset + sq.Rounds; nxt > c.next[sq.Group] {
			c.next[sq.Group] = nxt
		} else if _, ok := c.next[sq.Group]; !ok {
			c.next[sq.Group] = sp.Offset
		}
	}
	c.seeded = true
	for _, e := range c.backlog {
		if _, known := topo.Spans[e.g]; !known {
			// Still pre-JOIN: hand the event back to the stream's pending
			// buffer owner (it is already there; markers splice it later).
			continue
		}
		if e.skip {
			c.skipLocked(e.g, e.round)
		} else {
			c.applyLocked(e.g, e.round, e.ds)
		}
	}
	c.backlog = nil
	return nil
}

// minLocked returns the lowest global round some live group has yet to
// complete, from the cursor's view. stream.mu held.
func (c *Cursor) minLocked() uint64 {
	m := uint64(noRound)
	for g, sp := range c.stream.topo.Spans {
		w := c.nextFor(g, sp)
		if sp.Sealed && w >= sp.Offset+sp.Final+1 {
			continue // drained: no longer gates emission
		}
		if w < m {
			m = w
		}
	}
	if m == noRound {
		// Everything drained: emit whatever is buffered.
		m = c.emit
		for _, bucket := range c.pend {
			for global := range bucket {
				if global >= m {
					m = global + 1
				}
			}
		}
	}
	return m
}

// Next appends every merged delivery that has become available since the
// last call to buf and returns the extended slice: all global rounds up to
// the current merge frontier, interleaved exactly as batch MergeT orders
// them (global rounds ascending, groups ascending within a round). Passing
// a reused buffer makes the no-new-round case allocation-free. After
// ErrCursorLagged the cursor is permanently stale; resubscribe.
func (c *Cursor) Next(buf []core.Delivery) ([]core.Delivery, error) {
	s := c.stream
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed {
		return buf, ErrCursorClosed
	}
	if c.lagged {
		return buf, fmt.Errorf("%w (%s)", ErrCursorLagged, c.lagDetail)
	}
	for c.emit < c.minLocked() {
		for _, g := range s.sorted {
			if bucket, ok := c.pend[g]; ok {
				if ds, ok := bucket[c.emit]; ok {
					buf = append(buf, ds...)
					delete(bucket, c.emit)
					if len(bucket) == 0 {
						sp := s.topo.Spans[g]
						if sp.Sealed && c.next[g] >= sp.Offset+sp.Final+1 {
							delete(c.pend, g) // retired group fully consumed
						}
					}
				}
			}
		}
		c.emit++
	}
	return buf, nil
}

// StartRound returns the first global round the cursor covers (the merge
// base of its subscription snapshot).
func (c *Cursor) StartRound() uint64 {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	return c.start
}

// Emitted returns the cursor's emit frontier: every global round below it
// has been returned by Next.
func (c *Cursor) Emitted() uint64 {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	return c.emit
}

// Lagged reports whether the cursor missed rounds it cannot recover
// (see ErrCursorLagged).
func (c *Cursor) Lagged() bool {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	return c.lagged
}

// Close unsubscribes the cursor from its Stream.
func (c *Cursor) Close() {
	c.stream.mu.Lock()
	defer c.stream.mu.Unlock()
	c.closed = true
	delete(c.stream.cursors, c)
	c.pokeLocked() // a parked push adapter must notice the close
}
