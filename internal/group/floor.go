package group

import (
	"sync"
	"time"

	"repro/internal/ids"
)

// FloorTracker aggregates the per-process merge frontiers gossiped on the
// digest lane into the cluster-wide GC floor: the lowest global round any
// live process has yet to merge past. Checkpoint folds and WAL compaction
// gate on this floor instead of the purely local frontier, so a process
// that crashes and recovers slowly finds the rounds it is missing still
// gossipable — no GC-forced state transfer — as long as it returns within
// the staleness cap.
//
// The cap bounds the damage a dead process can do: a peer whose last report
// is older than the cap stops holding the floor down (its report goes
// stale), so garbage collection resumes at the pace of the live cluster.
// That peer, if it eventually returns, may then need the ordinary
// state-transfer path — exactly the pre-existing behaviour, now reserved
// for outages longer than the cap instead of any outage at all.
//
// Reports also carry the sender's topology epoch; the tracker remembers the
// highest epoch seen so a process that slept through a reshard can detect
// the stale router view without replaying the markers.
type FloorTracker struct {
	mu      sync.Mutex
	self    func() uint64 // local merge frontier (global rounds)
	cap     time.Duration
	now     func() time.Time
	floors  map[ids.ProcessID]uint64
	seen    map[ids.ProcessID]time.Time
	created time.Time
	epoch   uint64
	topo    []byte // encoded Topology of the highest epoch seen
}

// NewFloorTracker builds a tracker for the local process. self returns the
// local merge frontier in global rounds; stalenessCap bounds how long an
// unreported peer holds the floor (0 means reports never go stale).
func NewFloorTracker(self func() uint64, stalenessCap time.Duration) *FloorTracker {
	return &FloorTracker{
		self:    self,
		cap:     stalenessCap,
		now:     time.Now,
		floors:  make(map[ids.ProcessID]uint64),
		seen:    make(map[ids.ProcessID]time.Time),
		created: time.Now(),
	}
}

// Report records a peer's gossiped frontier (monotone per peer: stale
// reorderings on the wire cannot lower an earlier report) together with the
// topology descriptor it carried.
func (t *FloorTracker) Report(from ids.ProcessID, floor uint64, epoch uint64, topo []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if floor >= t.floors[from] {
		t.floors[from] = floor
	}
	t.seen[from] = t.now()
	if epoch > t.epoch {
		t.epoch = epoch
		t.topo = append([]byte(nil), topo...)
	}
}

// ClusterFloor returns min(local frontier, every fresh peer's reported
// frontier). Peers that have never reported count as floor 0 until the
// staleness cap has elapsed since the tracker was created — a conservative
// start that keeps early folds from outrunning slow joiners.
func (t *FloorTracker) ClusterFloor(peers []ids.ProcessID) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	floor := t.self()
	now := t.now()
	for _, p := range peers {
		last, ok := t.seen[p]
		if !ok {
			// Never heard from this peer: hold the floor at 0 until the
			// cap expires, then stop waiting for it.
			if t.cap == 0 || now.Sub(t.created) < t.cap {
				return 0
			}
			continue
		}
		if t.cap != 0 && now.Sub(last) >= t.cap {
			continue // stale: stop holding the floor for it
		}
		if f := t.floors[p]; f < floor {
			floor = f
		}
	}
	return floor
}

// Epoch returns the highest topology epoch seen in any report, with its
// encoded topology descriptor (nil when none carried one).
func (t *FloorTracker) Epoch() (uint64, []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch, t.topo
}
