// Package check validates recorded delivery histories against the Atomic
// Broadcast specification of §2.2:
//
//   - Validity: delivered messages were A-broadcast by some process;
//   - Integrity: a message appears at most once in a delivery sequence;
//   - Total Order: the delivery sequences of any two processes are
//     prefix-related;
//   - Termination: messages A-broadcast by good processes (and messages
//     delivered by anyone) are delivered by every good process.
//
// The checker exploits the protocol's position accounting: every delivery
// carries its global position in the single total order. Total order plus
// integrity then reduce to (a) a global bijection between positions and
// message identities, and (b) per-incarnation delivery positions being
// contiguous and starting at the incarnation's restore point. A redundant
// pairwise prefix check (VerifyPrefix) cross-validates the encoding-based
// argument for basic-protocol histories.
package check

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
)

// event is one recorded step of a process history.
type event struct {
	isRestore bool
	delivery  core.Delivery
	snapshot  core.Snapshot
}

// session is the history of one incarnation.
type session struct {
	events []event
}

// Recorder accumulates histories from all processes. It is safe for
// concurrent use; plug its callbacks into core.Config.
type Recorder struct {
	mu         sync.Mutex
	n          int
	broadcasts map[ids.MsgID][]byte
	returned   map[ids.MsgID]bool
	sessions   [][]*session // per process
}

// NewRecorder creates a recorder for n processes.
func NewRecorder(n int) *Recorder {
	r := &Recorder{
		n:          n,
		broadcasts: make(map[ids.MsgID][]byte),
		returned:   make(map[ids.MsgID]bool),
		sessions:   make([][]*session, n),
	}
	return r
}

// StartSession opens a new incarnation history for pid. Call it before each
// node start. An open session that recorded nothing is reused instead of
// retired: crash/restart cycles that never deliver (common in soaks with
// tight fault schedules, and for every group a process hosts but never
// touches between two restarts) would otherwise accumulate one empty
// session object per incarnation per group, forever — a recorder-side
// memory leak proportional to the fault count.
func (r *Recorder) StartSession(pid ids.ProcessID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ss := r.sessions[pid]; len(ss) > 0 && len(ss[len(ss)-1].events) == 0 {
		return
	}
	r.sessions[pid] = append(r.sessions[pid], &session{})
}

// Sessions returns the number of incarnation histories retained for pid
// (observability: soaks assert retained sessions track incarnations that
// actually recorded events, not raw restart counts).
func (r *Recorder) Sessions(pid ids.ProcessID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions[pid])
}

// OnDeliver returns the delivery callback for pid.
func (r *Recorder) OnDeliver(pid ids.ProcessID) func(core.Delivery) {
	return func(d core.Delivery) {
		r.mu.Lock()
		defer r.mu.Unlock()
		s := r.current(pid)
		s.events = append(s.events, event{delivery: d})
	}
}

// OnRestore returns the restore callback for pid.
func (r *Recorder) OnRestore(pid ids.ProcessID) func(core.Snapshot) {
	return func(snap core.Snapshot) {
		r.mu.Lock()
		defer r.mu.Unlock()
		s := r.current(pid)
		s.events = append(s.events, event{isRestore: true, snapshot: snap})
	}
}

// current returns the open session for pid, creating one if the harness
// forgot to. r.mu held.
func (r *Recorder) current(pid ids.ProcessID) *session {
	ss := r.sessions[pid]
	if len(ss) == 0 {
		r.sessions[pid] = append(r.sessions[pid], &session{})
		ss = r.sessions[pid]
	}
	return ss[len(ss)-1]
}

// RecordBroadcast notes an A-broadcast invocation (Validity set).
func (r *Recorder) RecordBroadcast(id ids.MsgID, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]byte, len(payload))
	copy(cp, payload)
	r.broadcasts[id] = cp
}

// MarkReturned notes that the A-broadcast invocation for id returned
// successfully: the protocol now owes its delivery (Termination clause 1).
func (r *Recorder) MarkReturned(id ids.MsgID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.returned[id] = true
}

// DeliveredAnywhere returns every message id observed in any delivery event
// (Termination clause 2 set).
func (r *Recorder) DeliveredAnywhere() []ids.MsgID {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[ids.MsgID]bool)
	var out []ids.MsgID
	for _, procSessions := range r.sessions {
		for _, s := range procSessions {
			for _, ev := range s.events {
				if !ev.isRestore && !seen[ev.delivery.Msg.ID] {
					seen[ev.delivery.Msg.ID] = true
					out = append(out, ev.delivery.Msg.ID)
				}
			}
		}
	}
	return out
}

// ReturnedBroadcasts returns the ids whose A-broadcast returned.
func (r *Recorder) ReturnedBroadcasts() []ids.MsgID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ids.MsgID, 0, len(r.returned))
	for id := range r.returned {
		out = append(out, id)
	}
	return out
}

// Deliveries returns the total number of delivery events recorded.
func (r *Recorder) Deliveries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, procSessions := range r.sessions {
		for _, s := range procSessions {
			for _, ev := range s.events {
				if !ev.isRestore {
					total++
				}
			}
		}
	}
	return total
}

// Verify checks Validity, Integrity and Total Order over everything
// recorded so far.
func (r *Recorder) Verify() error {
	r.mu.Lock()
	defer r.mu.Unlock()

	// Global position table: position -> message, message -> position.
	posToMsg := make(map[uint64]ids.MsgID)
	msgToPos := make(map[ids.MsgID]uint64)

	for pid, procSessions := range r.sessions {
		for si, s := range procSessions {
			expect := uint64(0)
			delivered := make(map[ids.MsgID]bool)
			for ei, ev := range s.events {
				if ev.isRestore {
					// A restore resets the application to the
					// snapshot: delivery positions restart at the
					// snapshot's base (possibly rewinding — the
					// adopted state re-delivers its suffix from
					// scratch when there is no application
					// checkpoint). Consistency of the re-delivered
					// messages is still enforced by the global
					// position bijection below.
					expect = ev.snapshot.Pos
					delivered = make(map[ids.MsgID]bool)
					continue
				}
				d := ev.delivery
				id := d.Msg.ID
				// Integrity within the incarnation's sequence.
				if delivered[id] {
					return fmt.Errorf("p%d session %d: message %v delivered twice", pid, si, id)
				}
				delivered[id] = true
				// Contiguity: σ_p has no holes.
				if d.Pos != expect {
					return fmt.Errorf("p%d session %d event %d: position %d, want %d (hole or reorder)",
						pid, si, ei, d.Pos, expect)
				}
				expect++
				// Total order: global position bijection.
				if prev, ok := posToMsg[d.Pos]; ok && prev != id {
					return fmt.Errorf("total order violated: position %d is %v at one process and %v at p%d",
						d.Pos, prev, id, pid)
				}
				posToMsg[d.Pos] = id
				if prevPos, ok := msgToPos[id]; ok && prevPos != d.Pos {
					return fmt.Errorf("integrity violated: %v delivered at positions %d and %d",
						id, prevPos, d.Pos)
				}
				msgToPos[id] = d.Pos
				// Validity: delivered messages were broadcast, with
				// the broadcast payload.
				payload, ok := r.broadcasts[id]
				if !ok {
					return fmt.Errorf("validity violated: %v delivered but never A-broadcast", id)
				}
				if !bytes.Equal(payload, d.Msg.Payload) {
					return fmt.Errorf("validity violated: %v delivered with altered payload", id)
				}
			}
		}
	}
	return nil
}

// Final is a process's final delivery state (base snapshot plus suffix),
// used for the Termination check.
type Final struct {
	PID      ids.ProcessID
	Base     core.Snapshot
	Suffix   []core.Delivery
	suffixed map[ids.MsgID]bool
}

// NewFinal builds a Final from a protocol's Sequence output.
func NewFinal(pid ids.ProcessID, base core.Snapshot, suffix []core.Delivery) Final {
	f := Final{PID: pid, Base: base, Suffix: suffix, suffixed: make(map[ids.MsgID]bool, len(suffix))}
	for _, d := range suffix {
		f.suffixed[d.Msg.ID] = true
	}
	return f
}

// covers reports whether the final state contains id (explicitly or via the
// base checkpoint's vector clock).
func (f Final) covers(id ids.MsgID) bool {
	if f.suffixed[id] {
		return true
	}
	return f.Base.VC != nil && f.Base.VC.Covers(id)
}

// VerifyTermination checks that every message in mustDeliver is contained
// in every good process's final delivery state.
func VerifyTermination(mustDeliver []ids.MsgID, goodFinals []Final) error {
	for _, id := range mustDeliver {
		for _, f := range goodFinals {
			if !f.covers(id) {
				return fmt.Errorf("termination violated: good process p%d never delivered %v", f.PID, id)
			}
		}
	}
	return nil
}

// VerifyPrefix is the direct pairwise statement of Total Order for plain
// (basic-protocol) histories: for any two sequences, one is a prefix of the
// other.
func VerifyPrefix(histories map[ids.ProcessID][]ids.MsgID) error {
	pids := make([]ids.ProcessID, 0, len(histories))
	for pid := range histories {
		pids = append(pids, pid)
	}
	for i := 0; i < len(pids); i++ {
		for j := i + 1; j < len(pids); j++ {
			a, b := histories[pids[i]], histories[pids[j]]
			short := a
			if len(b) < len(a) {
				short = b
			}
			for x := range short {
				if a[x] != b[x] {
					return fmt.Errorf("prefix property violated at index %d: p%v has %v, p%v has %v",
						x, pids[i], a[x], pids[j], b[x])
				}
			}
		}
	}
	return nil
}
