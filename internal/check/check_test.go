package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/vclock"
)

func mid(s int32, seq uint64) ids.MsgID {
	return ids.MsgID{Sender: ids.ProcessID(s), Incarnation: 1, Seq: seq}
}

func del(s int32, seq uint64, round, pos uint64) core.Delivery {
	return core.Delivery{
		Msg:   msg.Message{ID: mid(s, seq), Payload: []byte("p")},
		Round: round,
		Pos:   pos,
	}
}

// record broadcasts everything a history delivers so Validity passes.
func record(r *Recorder, ds ...core.Delivery) {
	for _, d := range ds {
		r.RecordBroadcast(d.Msg.ID, d.Msg.Payload)
	}
}

func TestVerifyAcceptsConsistentHistories(t *testing.T) {
	r := NewRecorder(2)
	a := del(0, 1, 0, 0)
	b := del(1, 1, 0, 1)
	c := del(0, 2, 1, 2)
	record(r, a, b, c)
	r.StartSession(0)
	r.StartSession(1)
	r.OnDeliver(0)(a)
	r.OnDeliver(0)(b)
	r.OnDeliver(0)(c)
	// p1 is one behind: a strict prefix.
	r.OnDeliver(1)(a)
	r.OnDeliver(1)(b)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if r.Deliveries() != 5 {
		t.Fatalf("deliveries = %d", r.Deliveries())
	}
}

func TestVerifyCatchesPositionConflict(t *testing.T) {
	r := NewRecorder(2)
	a := del(0, 1, 0, 0)
	x := del(1, 9, 0, 0) // same position, different message
	record(r, a, x)
	r.StartSession(0)
	r.StartSession(1)
	r.OnDeliver(0)(a)
	r.OnDeliver(1)(x)
	err := r.Verify()
	if err == nil || !strings.Contains(err.Error(), "total order") {
		t.Fatalf("expected total order violation, got %v", err)
	}
}

func TestVerifyCatchesDuplicateDelivery(t *testing.T) {
	r := NewRecorder(1)
	a := del(0, 1, 0, 0)
	a2 := del(0, 1, 1, 1) // same message again at a later position
	record(r, a)
	r.StartSession(0)
	r.OnDeliver(0)(a)
	r.OnDeliver(0)(a2)
	err := r.Verify()
	if err == nil || !strings.Contains(err.Error(), "delivered twice") {
		t.Fatalf("expected integrity violation, got %v", err)
	}
}

func TestVerifyCatchesHole(t *testing.T) {
	r := NewRecorder(1)
	a := del(0, 1, 0, 0)
	c := del(0, 2, 1, 2) // skips position 1
	record(r, a, c)
	r.StartSession(0)
	r.OnDeliver(0)(a)
	r.OnDeliver(0)(c)
	err := r.Verify()
	if err == nil || !strings.Contains(err.Error(), "hole") {
		t.Fatalf("expected hole, got %v", err)
	}
}

func TestVerifyCatchesSpuriousMessage(t *testing.T) {
	r := NewRecorder(1)
	a := del(0, 1, 0, 0)
	// Not recorded as broadcast.
	r.StartSession(0)
	r.OnDeliver(0)(a)
	err := r.Verify()
	if err == nil || !strings.Contains(err.Error(), "validity") {
		t.Fatalf("expected validity violation, got %v", err)
	}
}

func TestVerifyCatchesAlteredPayload(t *testing.T) {
	r := NewRecorder(1)
	a := del(0, 1, 0, 0)
	r.RecordBroadcast(a.Msg.ID, []byte("original"))
	r.StartSession(0)
	r.OnDeliver(0)(a) // payload "p" != "original"
	err := r.Verify()
	if err == nil || !strings.Contains(err.Error(), "altered") {
		t.Fatalf("expected altered payload, got %v", err)
	}
}

func TestRestoreResetsExpectations(t *testing.T) {
	r := NewRecorder(1)
	a := del(0, 1, 0, 0)
	b := del(1, 1, 1, 1)
	record(r, a, b)
	r.StartSession(0)
	r.OnDeliver(0)(a)
	r.OnDeliver(0)(b)
	// State transfer adoption: restore at position 1, then re-deliver b.
	vc := vclock.New()
	vc.Observe(a.Msg.ID)
	r.OnRestore(0)(core.Snapshot{VC: vc, Pos: 1, Rounds: 1})
	r.OnDeliver(0)(b)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossSessionRedeliveryAllowed(t *testing.T) {
	// A crash wipes the app; the replay phase re-delivers from scratch.
	r := NewRecorder(1)
	a := del(0, 1, 0, 0)
	record(r, a)
	r.StartSession(0)
	r.OnDeliver(0)(a)
	r.StartSession(0) // recovery
	r.OnDeliver(0)(a)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyTermination(t *testing.T) {
	a := del(0, 1, 0, 0)
	b := del(1, 1, 0, 1)
	vc := vclock.New()
	vc.Observe(a.Msg.ID)
	// Good process covers a via checkpoint, b explicitly.
	f := NewFinal(0, core.Snapshot{VC: vc, Pos: 1}, []core.Delivery{b})
	if err := VerifyTermination([]ids.MsgID{a.Msg.ID, b.Msg.ID}, []Final{f}); err != nil {
		t.Fatal(err)
	}
	// Missing message fails.
	missing := mid(2, 7)
	if err := VerifyTermination([]ids.MsgID{missing}, []Final{f}); err == nil {
		t.Fatal("termination should fail for missing message")
	}
}

func TestVerifyPrefix(t *testing.T) {
	h := map[ids.ProcessID][]ids.MsgID{
		0: {mid(0, 1), mid(1, 1), mid(0, 2)},
		1: {mid(0, 1), mid(1, 1)},
		2: {mid(0, 1), mid(1, 1), mid(0, 2)},
	}
	if err := VerifyPrefix(h); err != nil {
		t.Fatal(err)
	}
	h[1] = []ids.MsgID{mid(0, 1), mid(9, 9)}
	if err := VerifyPrefix(h); err == nil {
		t.Fatal("divergent histories accepted")
	}
}

func TestDeliveredAnywhereAndReturned(t *testing.T) {
	r := NewRecorder(2)
	a := del(0, 1, 0, 0)
	record(r, a)
	r.MarkReturned(a.Msg.ID)
	r.StartSession(0)
	r.OnDeliver(0)(a)
	if got := r.DeliveredAnywhere(); len(got) != 1 || got[0] != a.Msg.ID {
		t.Fatalf("delivered anywhere: %v", got)
	}
	if got := r.ReturnedBroadcasts(); len(got) != 1 || got[0] != a.Msg.ID {
		t.Fatalf("returned: %v", got)
	}
}

// TestStartSessionReusesEmptySessions is the recorder-leak regression: a
// crash/restart cycle that never delivers must not retain a session
// object per incarnation (sharded soaks restart every group of a process
// on every fault, so the leak scaled with faults x groups).
func TestStartSessionReusesEmptySessions(t *testing.T) {
	r := NewRecorder(1)
	for i := 0; i < 1000; i++ {
		r.StartSession(0)
	}
	if n := r.Sessions(0); n != 1 {
		t.Fatalf("%d empty sessions retained; want the one reused slot", n)
	}

	// A session that recorded something is retired, not reused: the next
	// start opens a fresh one, and contiguity is still enforced per
	// incarnation.
	a := del(0, 1, 0, 0)
	record(r, a)
	r.OnDeliver(0)(a)
	r.StartSession(0)
	if n := r.Sessions(0); n != 2 {
		t.Fatalf("sessions after a recorded history = %d; want 2", n)
	}
	for i := 0; i < 100; i++ {
		r.StartSession(0)
	}
	if n := r.Sessions(0); n != 2 {
		t.Fatalf("sessions after idle restarts = %d; want 2 (empty tail reused)", n)
	}
	// The reused tail still records correctly and the whole history
	// verifies.
	r.OnRestore(0)(core.Snapshot{Pos: 1, VC: vclock.New()})
	b := del(0, 2, 1, 1)
	record(r, b)
	r.OnDeliver(0)(b)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}
