package node

import (
	"context"
	"fmt"

	"repro/internal/dissem"
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/transport"
)

// SharedRing is the process-level dissemination ring of a sharded process:
// one payload relay covering every ordering group, running over the mux's
// dissem lane (Mux.DissemNet) — the ring twin of SharedFD. Relay frames
// carry the group tag, so G groups share one successor stream instead of
// maintaining G rings.
//
// Lifecycle: start one per process incarnation (after the shared failure
// detector — the ring derives successors from it — and before the group
// nodes, which register their sinks via Config.SharedRing), stop it when
// the process crashes.
type SharedRing struct {
	ring   *dissem.Ring
	rt     *router.Router
	cancel context.CancelFunc
}

// StartSharedRing attaches the dissem lane and boots the relay. net is
// typically Mux.DissemNet(); alive the process-level failure detector.
func StartSharedRing(ctx context.Context, pid ids.ProcessID, n int, alive dissem.Alive, net transport.Network, opts dissem.Options) (*SharedRing, error) {
	ep, err := net.Attach(pid)
	if err != nil {
		return nil, fmt.Errorf("node %v: attach shared ring: %w", pid, err)
	}
	rt := router.New(ep)
	ring := dissem.New(pid, n, alive, rt.Bound(router.ChanDissem), opts)
	rt.Handle(router.ChanDissem, ring.OnMessage)
	sctx, cancel := context.WithCancel(ctx)
	rt.Start(sctx)
	ring.Start(sctx)
	return &SharedRing{ring: ring, rt: rt, cancel: cancel}, nil
}

// Ring returns the shared ring — the value group nodes receive through
// Config.SharedRing.
func (s *SharedRing) Ring() *dissem.Ring { return s.ring }

// Stop ends the service: the forward loop exits, pending publishers
// unblock, and the dissem-lane endpoint detaches.
func (s *SharedRing) Stop() {
	s.cancel()
	s.ring.Stop()
	s.rt.Stop()
}
