package node_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestFullStackOverFileStorage runs three nodes whose stable storage is the
// CRC-framed file engine (the deployment configuration), crashes one, and
// verifies recovery replays from disk.
func TestFullStackOverFileStorage(t *testing.T) {
	const n = 3
	net := transport.NewMem(n, transport.MemOptions{Seed: 71})
	defer net.Close()

	var mu sync.Mutex
	orders := make([][]ids.MsgID, n)

	nodes := make([]*node.Node, n)
	for p := 0; p < n; p++ {
		p := p
		st, err := storage.NewFile(filepath.Join(t.TempDir(), "st"), false)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		nodes[p] = node.New(node.Config{
			PID: ids.ProcessID(p),
			N:   n,
			Core: core.Config{
				OnDeliver: func(d core.Delivery) {
					mu.Lock()
					orders[p] = append(orders[p], d.Msg.ID)
					mu.Unlock()
				},
				OnRestore: func(core.Snapshot) {
					mu.Lock()
					orders[p] = nil
					mu.Unlock()
				},
			},
		}, st, net)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for p := 0; p < n; p++ {
		if err := nodes[p].Start(ctx); err != nil {
			t.Fatalf("start %d: %v", p, err)
		}
		defer nodes[p].Crash()
	}

	for i := 0; i < 8; i++ {
		if _, err := nodes[i%n].Broadcast(ctx, []byte(fmt.Sprintf("disk%d", i))); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}

	nodes[1].Crash()
	if err := nodes[1].Start(ctx); err != nil {
		t.Fatalf("recover from disk: %v", err)
	}
	if nodes[1].Proto().Stats().ReplayedRounds == 0 {
		t.Fatal("expected disk replay")
	}

	// p1 keeps participating after disk recovery.
	id, err := nodes[1].Broadcast(ctx, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for p := 0; p < n; p++ {
			proto := nodes[p].Proto()
			if proto == nil || !proto.Delivered(id) {
				ok = false
			}
		}
		if ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	// All sequences prefix-agree (p1's was rebuilt from scratch).
	for p := 1; p < n; p++ {
		short := len(orders[0])
		if len(orders[p]) < short {
			short = len(orders[p])
		}
		for i := 0; i < short; i++ {
			if orders[0][i] != orders[p][i] {
				t.Fatalf("order divergence at %d between p0 and p%d", i, p)
			}
		}
	}
}
