// Package node hosts one process of the group: it wires the transport
// endpoint, stable storage, failure detector, consensus engine and atomic
// broadcast protocol into a single lifecycle with crash and recover
// transitions.
//
// A crash destroys the incarnation: every task stops, the endpoint detaches
// (messages arriving while down are lost, §2.1), and all volatile state is
// dropped. Recover starts a fresh incarnation from stable storage: the node
// logs a new epoch (the incarnation counter that qualifies message
// identities and failure-detector heartbeats), restores the consensus log,
// and runs the broadcast protocol's replay procedure.
package node

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dissem"
	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/transport"
)

// ErrDown is returned by operations that need a live incarnation.
var ErrDown = errors.New("node: process is down")

const keyEpoch = "node/epoch"

// Config assembles the per-layer configurations. PID, N, Group and
// incarnation numbers are filled into the layer configs by the node
// (Core.Group in particular is overwritten with Config.Group — set the
// group here, not on the core config).
type Config struct {
	PID ids.ProcessID
	N   int
	// Group tags this node's ordering group in a sharded multi-group
	// deployment (see internal/group); 0 for an unsharded process.
	Group     ids.GroupID
	Core      core.Config
	Consensus consensus.Config
	FD        fd.Options
	// Obs is the process's observability plane: the node threads it into
	// every layer it builds per incarnation (core, consensus, its own FD),
	// wires the storage stack's latency probes, and stamps incarnation
	// starts into the flight recorder. Nil disables all instrumentation.
	Obs *obs.Plane
	// SharedFD, when set, is called at every incarnation start and must
	// return the process-level failure-detector facade this node's
	// consensus engine should use (see SharedFD / StartSharedFD). The node
	// then runs no detector of its own: it sends no heartbeats and ignores
	// the FD channel — the process-level service owns both. Nil keeps the
	// classic one-detector-per-node wiring.
	SharedFD func() fd.API
	// RingDissem enables the ordering/dissemination split for this node:
	// it runs a payload ring (internal/dissem) on the router's dissem
	// channel, with successors derived from this node's liveness oracle,
	// and configures the core protocol for ID-only consensus values. Every
	// process of the deployment must enable it together (the proposal wire
	// format changes). For sharded processes use SharedRing instead.
	RingDissem bool
	// SharedRing, when set, is called at every incarnation start and must
	// return the process-level dissemination ring shared by every group of
	// a sharded process (see SharedRing / StartSharedRing — the ring twin
	// of SharedFD). The node registers its group's payload sink with it for
	// the lifetime of the incarnation and configures the core protocol for
	// ring mode. Mutually exclusive with RingDissem.
	SharedRing func() *dissem.Ring
	// App, when set, is called at every incarnation start with the
	// app-channel network binding; the returned handler (if non-nil)
	// receives app-channel packets (e.g. quorum reads).
	App func(net router.Net) router.Handler
}

// Node is one process. The stable store and the network outlive
// incarnations; everything else is rebuilt by Start.
type Node struct {
	cfg   Config
	store storage.Stable
	net   transport.Network

	mu  sync.Mutex
	inc *incarnation
}

// incarnation is the volatile half of a process.
type incarnation struct {
	epoch  uint32
	cancel context.CancelFunc
	rt     *router.Router
	det    fd.API       // own detector or the shared process-level facade
	own    *fd.Detector // non-nil only when this node runs its own detector
	eng    *consensus.Engine
	proto  *core.Protocol
	ring   *dissem.Ring // nil without ring dissemination
	// ownRing: the ring above is node-owned (RingDissem) rather than the
	// shared process-level one, so Crash stops it.
	ownRing bool
}

// New creates a node. store must be the process's stable storage (it
// survives crashes); net the shared network.
func New(cfg Config, store storage.Stable, net transport.Network) *Node {
	return &Node{cfg: cfg, store: store, net: net}
}

// Start boots a new incarnation: it logs the incremented epoch, rebuilds
// the stack from stable storage, and blocks until the broadcast replay
// phase completes. It is both "initialization" and "recovery" (Fig. 2).
func (n *Node) Start(ctx context.Context) error {
	n.mu.Lock()
	if n.inc != nil {
		n.mu.Unlock()
		return fmt.Errorf("node %v: already up", n.cfg.PID)
	}
	n.mu.Unlock()

	epoch, err := n.nextEpoch()
	if err != nil {
		return err
	}

	ep, err := n.net.Attach(n.cfg.PID)
	if err != nil {
		return fmt.Errorf("node %v: attach: %w", n.cfg.PID, err)
	}
	rt := router.New(ep)

	// The liveness oracle: this node's own detector, or a facade over the
	// process-level one shared by every group of a sharded process (then
	// this node sends no heartbeats at all).
	var det fd.API
	var own *fd.Detector
	if n.cfg.SharedFD != nil {
		det = n.cfg.SharedFD()
	} else {
		fdOpts := n.cfg.FD
		fdOpts.Obs = n.cfg.Obs
		own = fd.New(n.cfg.PID, n.cfg.N, epoch, fdOpts, rt.Bound(router.ChanFD))
		det = own
	}

	ccfg := n.cfg.Consensus
	ccfg.PID = n.cfg.PID
	ccfg.N = n.cfg.N
	ccfg.Group = n.cfg.Group
	ccfg.Obs = n.cfg.Obs
	if ccfg.Seed == 0 {
		ccfg.Seed = uint64(n.cfg.PID)<<32 | uint64(epoch)
	}
	eng, err := consensus.New(ccfg, n.store, rt.Bound(router.ChanConsensus), det)
	if err != nil {
		rt.Stop()
		return fmt.Errorf("node %v: consensus: %w", n.cfg.PID, err)
	}

	// The dissemination ring: node-owned on the router's dissem channel
	// (unsharded ring mode), or the process-level one shared by every
	// group (sharded ring mode, like the shared FD).
	var ring *dissem.Ring
	ownRing := false
	if n.cfg.SharedRing != nil {
		ring = n.cfg.SharedRing()
	} else if n.cfg.RingDissem {
		ring = dissem.New(n.cfg.PID, n.cfg.N, det, rt.Bound(router.ChanDissem), dissem.Options{})
		ownRing = true
	}

	pcfg := n.cfg.Core
	pcfg.PID = n.cfg.PID
	pcfg.N = n.cfg.N
	pcfg.Incarnation = epoch
	pcfg.Group = n.cfg.Group
	pcfg.Obs = n.cfg.Obs
	if ring != nil {
		pcfg.Dissem = ring.Publisher(n.cfg.Group)
	}
	proto := core.New(pcfg, n.store, eng, rt.Bound(router.ChanCore))
	if ring != nil {
		ring.Register(n.cfg.Group, proto.AddDisseminated)
	}

	if own != nil {
		rt.Handle(router.ChanFD, own.OnMessage)
	}
	rt.Handle(router.ChanConsensus, eng.OnMessage)
	rt.Handle(router.ChanCore, proto.OnMessage)
	if ownRing {
		rt.Handle(router.ChanDissem, ring.OnMessage)
	}
	if n.cfg.App != nil {
		if h := n.cfg.App(rt.Bound(router.ChanApp)); h != nil {
			rt.Handle(router.ChanApp, h)
		}
	}

	ictx, cancel := context.WithCancel(ctx)
	inc := &incarnation{
		epoch:   epoch,
		cancel:  cancel,
		rt:      rt,
		det:     det,
		own:     own,
		eng:     eng,
		proto:   proto,
		ring:    ring,
		ownRing: ownRing,
	}
	n.mu.Lock()
	n.inc = inc
	n.mu.Unlock()

	// Wire the storage stack's latency probes (idempotent per engine) and
	// stamp the incarnation start before any layer produces events.
	obsWireStorage(n.store, n.cfg.Obs)
	if ring != nil {
		ring.SetObs(n.cfg.Obs)
	}
	n.cfg.Obs.Flight().Event(obs.EvNodeStart, n.cfg.Group, uint64(epoch), 0, 0, "incarnation started")

	rt.Start(ictx)
	if own != nil {
		own.Start(ictx)
	}
	if ownRing {
		ring.Start(ictx)
	}
	eng.Start(ictx)
	if err := proto.Start(ictx); err != nil {
		// Recovery was aborted (crash during replay or storage death).
		n.Crash()
		return fmt.Errorf("node %v: recovery: %w", n.cfg.PID, err)
	}
	return nil
}

// nextEpoch increments and logs the incarnation counter — the single
// node-layer log write per recovery.
func (n *Node) nextEpoch() (uint32, error) {
	epoch, err := nextEpochCell(n.store, keyEpoch, "node")
	if err != nil {
		return 0, fmt.Errorf("node %v: %w", n.cfg.PID, err)
	}
	return epoch, nil
}

// Crash kills the incarnation: all volatile state is lost; stable storage
// survives. Crashing a down node is a no-op.
func (n *Node) Crash() {
	n.mu.Lock()
	inc := n.inc
	n.inc = nil
	n.mu.Unlock()
	if inc == nil {
		return
	}
	inc.cancel()
	if inc.ring != nil {
		// Detach the group's payload sink first: relay frames arriving
		// during teardown must not reach a stopping protocol. A shared
		// process-level ring outlives the group node (like the shared
		// detector); a node-owned ring dies with the incarnation.
		inc.ring.Unregister(n.cfg.Group)
		if inc.ownRing {
			inc.ring.Stop()
		}
	}
	inc.rt.Stop() // closes the endpoint: packets now dropped
	inc.proto.Stop()
	inc.eng.Stop()
	if inc.own != nil {
		inc.own.Stop() // a shared detector outlives the group node
	}
}

// Up reports whether the process currently has a live incarnation.
func (n *Node) Up() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inc != nil
}

// Epoch returns the current incarnation number (0 if down).
func (n *Node) Epoch() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return 0
	}
	return n.inc.epoch
}

// Proto returns the live broadcast protocol, or nil if the node is down.
func (n *Node) Proto() *core.Protocol {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return nil
	}
	return n.inc.proto
}

// Engine returns the live consensus engine, or nil if the node is down.
func (n *Node) Engine() *consensus.Engine {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return nil
	}
	return n.inc.eng
}

// Detector returns the live failure-detector view (the node's own
// detector, or its facade over the shared process-level one), or nil if
// the node is down.
func (n *Node) Detector() fd.API {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return nil
	}
	return n.inc.det
}

// Broadcast submits a payload through the live incarnation.
func (n *Node) Broadcast(ctx context.Context, payload []byte) (ids.MsgID, error) {
	p := n.Proto()
	if p == nil {
		return ids.MsgID{}, ErrDown
	}
	return p.Broadcast(ctx, payload)
}

// PID returns the node's process id.
func (n *Node) PID() ids.ProcessID { return n.cfg.PID }

// obsWireStorage walks the storage chain and attaches the plane's latency
// probes to every layer that supports them. Wrappers (Faulty, Accounted,
// Prefixed) expose Inner; the walk stops at the first opaque engine.
func obsWireStorage(st storage.Stable, p *obs.Plane) {
	if p == nil {
		return
	}
	for st != nil {
		switch s := st.(type) {
		case *storage.Faulty:
			s.SetObs(p)
			st = s.Inner()
		case *storage.WAL:
			s.SetObs(p)
			return
		case interface{ Inner() storage.Stable }:
			st = s.Inner()
		default:
			return
		}
	}
}
