// Package node hosts one process of the group: it wires the transport
// endpoint, stable storage, failure detector, consensus engine and atomic
// broadcast protocol into a single lifecycle with crash and recover
// transitions.
//
// A crash destroys the incarnation: every task stops, the endpoint detaches
// (messages arriving while down are lost, §2.1), and all volatile state is
// dropped. Recover starts a fresh incarnation from stable storage: the node
// logs a new epoch (the incarnation counter that qualifies message
// identities and failure-detector heartbeats), restores the consensus log,
// and runs the broadcast protocol's replay procedure.
package node

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrDown is returned by operations that need a live incarnation.
var ErrDown = errors.New("node: process is down")

const keyEpoch = "node/epoch"

// Config assembles the per-layer configurations. PID, N, Group and
// incarnation numbers are filled into the layer configs by the node
// (Core.Group in particular is overwritten with Config.Group — set the
// group here, not on the core config).
type Config struct {
	PID ids.ProcessID
	N   int
	// Group tags this node's ordering group in a sharded multi-group
	// deployment (see internal/group); 0 for an unsharded process.
	Group     ids.GroupID
	Core      core.Config
	Consensus consensus.Config
	FD        fd.Options
	// App, when set, is called at every incarnation start with the
	// app-channel network binding; the returned handler (if non-nil)
	// receives app-channel packets (e.g. quorum reads).
	App func(net router.Net) router.Handler
}

// Node is one process. The stable store and the network outlive
// incarnations; everything else is rebuilt by Start.
type Node struct {
	cfg   Config
	store storage.Stable
	net   transport.Network

	mu  sync.Mutex
	inc *incarnation
}

// incarnation is the volatile half of a process.
type incarnation struct {
	epoch  uint32
	cancel context.CancelFunc
	rt     *router.Router
	det    *fd.Detector
	eng    *consensus.Engine
	proto  *core.Protocol
}

// New creates a node. store must be the process's stable storage (it
// survives crashes); net the shared network.
func New(cfg Config, store storage.Stable, net transport.Network) *Node {
	return &Node{cfg: cfg, store: store, net: net}
}

// Start boots a new incarnation: it logs the incremented epoch, rebuilds
// the stack from stable storage, and blocks until the broadcast replay
// phase completes. It is both "initialization" and "recovery" (Fig. 2).
func (n *Node) Start(ctx context.Context) error {
	n.mu.Lock()
	if n.inc != nil {
		n.mu.Unlock()
		return fmt.Errorf("node %v: already up", n.cfg.PID)
	}
	n.mu.Unlock()

	epoch, err := n.nextEpoch()
	if err != nil {
		return err
	}

	ep, err := n.net.Attach(n.cfg.PID)
	if err != nil {
		return fmt.Errorf("node %v: attach: %w", n.cfg.PID, err)
	}
	rt := router.New(ep)

	det := fd.New(n.cfg.PID, n.cfg.N, epoch, n.cfg.FD, rt.Bound(router.ChanFD))

	ccfg := n.cfg.Consensus
	ccfg.PID = n.cfg.PID
	ccfg.N = n.cfg.N
	if ccfg.Seed == 0 {
		ccfg.Seed = uint64(n.cfg.PID)<<32 | uint64(epoch)
	}
	eng, err := consensus.New(ccfg, n.store, rt.Bound(router.ChanConsensus), det)
	if err != nil {
		rt.Stop()
		return fmt.Errorf("node %v: consensus: %w", n.cfg.PID, err)
	}

	pcfg := n.cfg.Core
	pcfg.PID = n.cfg.PID
	pcfg.N = n.cfg.N
	pcfg.Incarnation = epoch
	pcfg.Group = n.cfg.Group
	proto := core.New(pcfg, n.store, eng, rt.Bound(router.ChanCore))

	rt.Handle(router.ChanFD, det.OnMessage)
	rt.Handle(router.ChanConsensus, eng.OnMessage)
	rt.Handle(router.ChanCore, proto.OnMessage)
	if n.cfg.App != nil {
		if h := n.cfg.App(rt.Bound(router.ChanApp)); h != nil {
			rt.Handle(router.ChanApp, h)
		}
	}

	ictx, cancel := context.WithCancel(ctx)
	inc := &incarnation{
		epoch:  epoch,
		cancel: cancel,
		rt:     rt,
		det:    det,
		eng:    eng,
		proto:  proto,
	}
	n.mu.Lock()
	n.inc = inc
	n.mu.Unlock()

	rt.Start(ictx)
	det.Start(ictx)
	eng.Start(ictx)
	if err := proto.Start(ictx); err != nil {
		// Recovery was aborted (crash during replay or storage death).
		n.Crash()
		return fmt.Errorf("node %v: recovery: %w", n.cfg.PID, err)
	}
	return nil
}

// nextEpoch increments and logs the incarnation counter — the single
// node-layer log write per recovery.
func (n *Node) nextEpoch() (uint32, error) {
	epoch := uint32(1)
	if raw, ok, err := n.store.Get(keyEpoch); err != nil {
		return 0, fmt.Errorf("node %v: read epoch: %w", n.cfg.PID, err)
	} else if ok {
		r := wire.NewReader(raw)
		epoch = uint32(r.U64()) + 1
		if r.Done() != nil {
			return 0, fmt.Errorf("node %v: corrupt epoch cell", n.cfg.PID)
		}
	}
	w := wire.NewWriter(8)
	w.U64(uint64(epoch))
	if err := n.store.Put(keyEpoch, w.Bytes()); err != nil {
		return 0, fmt.Errorf("node %v: log epoch: %w", n.cfg.PID, err)
	}
	return epoch, nil
}

// Crash kills the incarnation: all volatile state is lost; stable storage
// survives. Crashing a down node is a no-op.
func (n *Node) Crash() {
	n.mu.Lock()
	inc := n.inc
	n.inc = nil
	n.mu.Unlock()
	if inc == nil {
		return
	}
	inc.cancel()
	inc.rt.Stop() // closes the endpoint: packets now dropped
	inc.proto.Stop()
	inc.eng.Stop()
	inc.det.Stop()
}

// Up reports whether the process currently has a live incarnation.
func (n *Node) Up() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inc != nil
}

// Epoch returns the current incarnation number (0 if down).
func (n *Node) Epoch() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return 0
	}
	return n.inc.epoch
}

// Proto returns the live broadcast protocol, or nil if the node is down.
func (n *Node) Proto() *core.Protocol {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return nil
	}
	return n.inc.proto
}

// Engine returns the live consensus engine, or nil if the node is down.
func (n *Node) Engine() *consensus.Engine {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return nil
	}
	return n.inc.eng
}

// Detector returns the live failure detector, or nil if the node is down.
func (n *Node) Detector() *fd.Detector {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inc == nil {
		return nil
	}
	return n.inc.det
}

// Broadcast submits a payload through the live incarnation.
func (n *Node) Broadcast(ctx context.Context, payload []byte) (ids.MsgID, error) {
	p := n.Proto()
	if p == nil {
		return ids.MsgID{}, ErrDown
	}
	return p.Broadcast(ctx, payload)
}

// PID returns the node's process id.
func (n *Node) PID() ids.ProcessID { return n.cfg.PID }
