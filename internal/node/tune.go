package node

import (
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/tune"
)

// This file adapts a Node (and its storage chain) into internal/tune
// targets. The adapters resolve the live incarnation on every call —
// Proto()/Engine() return nil while the process is down — so one
// controller keeps working across crash/recovery without rewiring.

// TuneGroup builds the controller target for n's ordering group. Signals
// reports ok=false while the node is down (the controller re-baselines on
// the next incarnation); the Set callbacks silently no-op then.
func TuneGroup(n *Node) tune.Group {
	return tune.Group{
		Name: fmt.Sprintf("g%d", n.cfg.Group),
		Signals: func() (tune.GroupSignals, bool) {
			p := n.Proto()
			if p == nil {
				return tune.GroupSignals{}, false
			}
			ts := p.TuneSignals()
			sig := tune.GroupSignals{
				Proposals:  ts.Proposals,
				Messages:   ts.Messages,
				FullSeals:  ts.FullSeals,
				TimerSeals: ts.TimerSeals,
				Delivered:  ts.Delivered,
				Backlog:    ts.Backlog,
				InFlight:   ts.InFlight,
				TentOut:    ts.TentOut,
				Depth:      ts.Depth,
				BatchDelay: ts.BatchDelay,
			}
			if e := n.Engine(); e != nil {
				sig.Quorum = e.QuorumLatency()
			}
			return sig, true
		},
		SetBatchDelay: func(d time.Duration) {
			if p := n.Proto(); p != nil {
				p.SetBatchDelay(d)
			}
		},
		SetDepth: func(d int) {
			if p := n.Proto(); p != nil {
				p.SetPipelineDepth(d)
			}
		},
	}
}

// TuneSync builds the controller's durability target from a storage chain,
// or ok=false when no group-commit engine is underneath (nothing to tune:
// File/Mem engines sync per write by construction). The WAL outlives
// incarnations, so the target binds it directly.
func TuneSync(st storage.Stable) (tune.Sync, bool) {
	w := FindWAL(st)
	if w == nil {
		return tune.Sync{}, false
	}
	return tune.Sync{
		Signals: func() (tune.SyncSignals, bool) {
			return tune.SyncSignals{
				Records: w.RecordCount(),
				Syncs:   w.SyncCount(),
				Persist: w.FsyncLatency(),
			}, true
		},
		Apply: w.SetGroupCommit,
	}, true
}

// FindWAL walks a storage chain (Faulty/Accounted/Prefixed wrappers) down
// to the group-commit WAL, nil when the base engine is something else.
func FindWAL(st storage.Stable) *storage.WAL {
	for st != nil {
		switch s := st.(type) {
		case *storage.WAL:
			return s
		case interface{ Inner() storage.Stable }:
			st = s.Inner()
		default:
			return nil
		}
	}
	return nil
}
