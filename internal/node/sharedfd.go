package node

import (
	"context"
	"fmt"

	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
)

// keyProcEpoch is the process-level incarnation counter of a sharded
// process — the epoch the shared failure detector advertises. It is
// distinct from each group node's own keyEpoch cell, so the two counters
// can live in the same namespace without colliding.
const keyProcEpoch = "proc/epoch"

// SharedFD is the process-level failure-detector service of a sharded
// process: one Detector covering the whole process incarnation, serving
// every ordering group through per-group fd.View facades. The paper's
// liveness oracle is per process (§3.5) — a process's groups crash and
// recover together — so G per-group detectors send G identical heartbeat
// streams per peer where one suffices. SharedFD runs that one stream over
// the mux's process lane (Mux.ProcNet).
//
// Lifecycle: start one per process incarnation (before the group nodes,
// so their consensus engines see a live oracle), stop it when the process
// crashes. The next incarnation starts a fresh one at a higher epoch.
type SharedFD struct {
	det    *fd.Detector
	rt     *router.Router
	cancel context.CancelFunc
}

// StartSharedFD attaches the process lane, boots the heartbeat task at the
// given epoch, and returns the running service. net is typically
// Mux.ProcNet(); epoch the process-level incarnation from NextProcEpoch.
func StartSharedFD(ctx context.Context, pid ids.ProcessID, n int, epoch uint32, opts fd.Options, net transport.Network) (*SharedFD, error) {
	ep, err := net.Attach(pid)
	if err != nil {
		return nil, fmt.Errorf("node %v: attach shared fd: %w", pid, err)
	}
	rt := router.New(ep)
	det := fd.New(pid, n, epoch, opts, rt.Bound(router.ChanFD))
	rt.Handle(router.ChanFD, det.OnMessage)
	sctx, cancel := context.WithCancel(ctx)
	rt.Start(sctx)
	det.Start(sctx)
	return &SharedFD{det: det, rt: rt, cancel: cancel}, nil
}

// Detector returns the shared process-level detector.
func (s *SharedFD) Detector() *fd.Detector { return s.det }

// View returns group g's facade over the shared detector — the value to
// pass to that group's node via Config.SharedFD.
func (s *SharedFD) View(g ids.GroupID) fd.API { return s.det.View(g) }

// Stop ends the service: the heartbeat task exits and the process-lane
// endpoint detaches (frames to it are dropped, like any crashed lane).
func (s *SharedFD) Stop() {
	s.cancel()
	s.rt.Stop()
	s.det.Stop()
}

// NextProcEpoch increments and logs the process-level incarnation counter
// in st — the shared failure detector's epoch. It is the process-scope
// twin of the per-node epoch log: one write per whole-process recovery,
// charged to the node/failure-detector layer like the per-node cell
// (§4.3's accounting).
func NextProcEpoch(st storage.Stable) (uint32, error) {
	return nextEpochCell(st, keyProcEpoch, "process")
}

// nextEpochCell increments and logs one epoch cell.
func nextEpochCell(st storage.Stable, key, what string) (uint32, error) {
	epoch := uint32(1)
	if raw, ok, err := st.Get(key); err != nil {
		return 0, fmt.Errorf("node: read %s epoch: %w", what, err)
	} else if ok {
		r := wire.NewReader(raw)
		epoch = uint32(r.U64()) + 1
		if r.Done() != nil {
			return 0, fmt.Errorf("node: corrupt %s epoch cell", what)
		}
	}
	w := wire.NewWriter(8)
	w.U64(uint64(epoch))
	if err := st.Put(key, w.Bytes()); err != nil {
		return 0, fmt.Errorf("node: log %s epoch: %w", what, err)
	}
	return epoch, nil
}
