package node_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/ids"
)

func TestEpochIncrementsPerIncarnation(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 201})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[0].Epoch(); got != 1 {
		t.Fatalf("first epoch = %d", got)
	}
	c.Crash(0)
	if got := c.Nodes[0].Epoch(); got != 0 {
		t.Fatalf("down epoch = %d", got)
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[0].Epoch(); got != 2 {
		t.Fatalf("second epoch = %d", got)
	}
	c.Crash(0)
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[0].Epoch(); got != 3 {
		t.Fatalf("third epoch = %d", got)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 202})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[0].Start(context.Background()); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 203})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	c.Crash(1) // no-op, no panic
	if c.Nodes[1].Up() {
		t.Fatal("still up")
	}
}

func TestBroadcastWhileDownFails(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 204})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	c.Crash(2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Broadcast(ctx, 2, []byte("x")); err == nil {
		t.Fatal("broadcast on down node accepted")
	}
	if c.Nodes[2].Proto() != nil || c.Nodes[2].Engine() != nil || c.Nodes[2].Detector() != nil {
		t.Fatal("down node exposes live components")
	}
}

// TestCrashAtEveryEarlyLogOp drives a fixed workload while crashing p1 at
// the Nth stable-storage log operation, for a sweep of N. Whatever the
// crash point — mid-proposal, mid-acceptor-update, mid-decision — safety
// must hold after recovery. This is the §4.2 "crashes at critical points"
// argument, mechanized.
func TestCrashAtEveryEarlyLogOp(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep is slow")
	}
	for _, failAt := range []int64{1, 2, 3, 5, 8, 13, 21} {
		failAt := failAt
		t.Run(fmt.Sprintf("op%d", failAt), func(t *testing.T) {
			c := harness.NewCluster(harness.Options{
				N:                   3,
				Seed:                300 + uint64(failAt),
				InjectFaultyStorage: true,
			})
			defer c.Stop()
			if err := c.StartAll(); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			// Arm p1: its storage dies at the failAt-th log write;
			// the trip crashes the node from a fresh goroutine.
			c.Faults[1].FailAfter(failAt, func() { go c.Crash(1) })

			for i := 0; i < 6; i++ {
				sender := ids.ProcessID(i % 2) // p0 and p1 both send
				if sender == 1 && !c.Nodes[1].Up() {
					sender = 0
				}
				bctx, bcancel := context.WithTimeout(ctx, 20*time.Second)
				_, err := c.Broadcast(bctx, sender, []byte(fmt.Sprintf("m%d", i)))
				bcancel()
				if err != nil && ctx.Err() != nil {
					t.Fatalf("broadcast %d: %v", i, err)
				}
			}
			// Wait until the trip fired (or accept that the workload
			// was too small to reach it), then recover p1.
			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) && !c.Faults[1].Tripped() {
				time.Sleep(5 * time.Millisecond)
			}
			if c.Nodes[1].Up() {
				c.Crash(1)
			}
			if _, err := c.Recover(1); err != nil {
				t.Fatalf("recover: %v", err)
			}
			if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 205})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for cycle := 0; cycle < 5; cycle++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("cycle%d", cycle))); err != nil {
			t.Fatal(err)
		}
		c.Crash(1)
		if _, err := c.Recover(1); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[1].Epoch(); got != 6 {
		t.Fatalf("epoch after 5 cycles = %d", got)
	}
}
