package consensus

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestMessageRoundTrip(t *testing.T) {
	cases := []message{
		{kind: mPrepare, k: 3, b: 10},
		{kind: mPromise, k: 3, b: 10, hasAcc: true, accB: 7, val: []byte("v")},
		{kind: mPromise, k: 0, b: 1},
		{kind: mAccept, k: 9, b: 22, val: []byte("value")},
		{kind: mAccepted, k: 9, b: 22},
		{kind: mNack, k: 2, b: 5, promised: 8},
		{kind: mDecide, k: 1, val: []byte("decided")},
		{kind: mDecideReq, k: 77},
		{kind: mForgotten, k: 4, promised: 100},
	}
	for _, in := range cases {
		got, err := decodeMessage(in.encode())
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if got.kind != in.kind || got.k != in.k || got.b != in.b ||
			got.hasAcc != in.hasAcc || got.accB != in.accB ||
			got.promised != in.promised || !bytes.Equal(got.val, in.val) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(kind uint8, k, b, accB, promised uint64, hasAcc bool, val []byte) bool {
		in := message{kind: kind, k: k, b: b, hasAcc: hasAcc, accB: accB, val: val, promised: promised}
		got, err := decodeMessage(in.encode())
		if err != nil {
			return false
		}
		return got.kind == in.kind && got.k == in.k && got.b == in.b &&
			got.hasAcc == in.hasAcc && got.accB == in.accB &&
			got.promised == in.promised && bytes.Equal(got.val, in.val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMessageRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{nil, {1}, {1, 0xff}, {1, 2, 3}} {
		if _, err := decodeMessage(bad); err == nil && len(bad) > 3 {
			t.Fatalf("garbage %v decoded", bad)
		}
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, k := range []uint64{0, 1, 255, 1 << 40} {
		for _, mk := range []func(uint64) string{propKey, accKey, decKey} {
			key := mk(k)
			kind, got, ok := parseKey(key)
			if !ok || got != k {
				t.Fatalf("parse %q: kind=%c k=%d ok=%v", key, kind, got, ok)
			}
		}
	}
	for _, bad := range []string{"cons/", "cons/x", "other/p/01", "cons/p/zz"} {
		if _, _, ok := parseKey(bad); ok {
			t.Fatalf("parsed invalid key %q", bad)
		}
	}
}

func TestKeysSortNumerically(t *testing.T) {
	if !(propKey(9) < propKey(10) && propKey(10) < propKey(255) && propKey(255) < propKey(1<<30)) {
		t.Fatal("fixed-width keys do not sort numerically")
	}
}

func TestBallotUniquenessAcrossProcesses(t *testing.T) {
	// Under both policies, no two processes may ever use the same ballot.
	for _, policy := range []Policy{PolicyLeader, PolicyRotating} {
		seen := make(map[uint64]int)
		for pid := 0; pid < 5; pid++ {
			e := &Engine{cfg: Config{PID: ids.ProcessID(pid), N: 5, Policy: policy}}
			for a := uint64(0); a < 40; a++ {
				if policy == PolicyRotating && !e.myTurn(a, 0) {
					continue // rotating: attempt a belongs to a%n only
				}
				b := e.ballotFor(a)
				if owner, dup := seen[b]; dup && owner != pid {
					t.Fatalf("policy %v: ballot %d used by p%d and p%d", policy, b, owner, pid)
				}
				seen[b] = pid
			}
		}
	}
}
