package consensus

import (
	"repro/internal/ids"
	"repro/internal/obs"
)

// consMetrics is the engine's latency instrumentation, registered under
// "abcast.consensus.<name>{group}". Both histograms are nil-safe (an
// engine without an observability plane gets unregistered metrics that
// still work), so the decide path never branches on wiring.
type consMetrics struct {
	// quorumNS is propose → accept-quorum: the coordination cost of one
	// instance, excluding the decision fsync.
	quorumNS *obs.Histogram
	// decideFsyncNS is accept-quorum → durable decision exposed: the
	// decision cell's group-commit wait, the storage half of decide
	// latency. Together with quorumNS it splits "decision was slow" into
	// "consensus was slow" vs "fsync was slow".
	decideFsyncNS *obs.Histogram
}

func newConsMetrics(reg *obs.Registry, g ids.GroupID) consMetrics {
	return consMetrics{
		quorumNS:      reg.Histogram(obs.GroupLabel("abcast.consensus.quorum_ns", g)),
		decideFsyncNS: reg.Histogram(obs.GroupLabel("abcast.consensus.decide_fsync_ns", g)),
	}
}

// QuorumLatency snapshots the propose → accept-quorum histogram — the
// signal the autotuner (internal/tune) watches to decide whether deepening
// the pipeline is inflating coordination latency. Cumulative for the
// engine's lifetime; callers difference successive snapshots for an
// epoch-local view.
func (e *Engine) QuorumLatency() obs.HistSnapshot {
	return e.met.quorumNS.Snapshot()
}

// DecideFsyncLatency snapshots the accept-quorum → durable-decision
// histogram (the decision cell's group-commit wait).
func (e *Engine) DecideFsyncLatency() obs.HistSnapshot {
	return e.met.decideFsyncNS.Snapshot()
}

// registerLeaseFuncs exports the holder-side lease counters as
// read-on-scrape metrics. Re-registration on each incarnation replaces the
// previous engine's closure, so the scrape always reads the live engine.
func (e *Engine) registerLeaseFuncs(reg *obs.Registry) {
	g := e.cfg.Group
	reg.Func(obs.GroupLabel("abcast.consensus.lease_acquired", g), func() int64 {
		return int64(e.LeaseStats().Acquired)
	})
	reg.Func(obs.GroupLabel("abcast.consensus.lease_fast_rounds", g), func() int64 {
		return int64(e.LeaseStats().FastRounds)
	})
	reg.Func(obs.GroupLabel("abcast.consensus.lease_fallbacks", g), func() int64 {
		return int64(e.LeaseStats().Fallbacks)
	})
	reg.Func(obs.GroupLabel("abcast.consensus.lease_held", g), func() int64 {
		if e.LeaseStats().Held {
			return 1
		}
		return 0
	})
}
