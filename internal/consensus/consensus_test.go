package consensus

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/transport"
)

// testProc bundles one process's stack for consensus-level tests.
type testProc struct {
	pid    ids.ProcessID
	store  *storage.Mem
	rt     *router.Router
	det    *fd.Detector
	eng    *Engine
	cancel context.CancelFunc
}

// testCluster wires n consensus engines over a mem network.
type testCluster struct {
	t     *testing.T
	net   *transport.Mem
	procs []*testProc
	cfg   Config
}

func newTestCluster(t *testing.T, n int, policy Policy, netOpts transport.MemOptions) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:   t,
		net: transport.NewMem(n, netOpts),
		cfg: Config{
			N:        n,
			Policy:   policy,
			RetryMin: 3 * time.Millisecond,
			RetryMax: 40 * time.Millisecond,
		},
	}
	t.Cleanup(tc.net.Close)
	for p := 0; p < n; p++ {
		tc.procs = append(tc.procs, &testProc{
			pid:   ids.ProcessID(p),
			store: storage.NewMem(),
		})
	}
	for p := range tc.procs {
		tc.start(ids.ProcessID(p), 1)
	}
	return tc
}

// start boots (or reboots) process pid with the given incarnation epoch.
func (tc *testCluster) start(pid ids.ProcessID, epoch uint32) {
	tc.t.Helper()
	pr := tc.procs[pid]
	ep, err := tc.net.Attach(pid)
	if err != nil {
		tc.t.Fatalf("attach %v: %v", pid, err)
	}
	pr.rt = router.New(ep)
	pr.det = fd.New(pid, len(tc.procs), epoch, fd.Options{
		Heartbeat: 5 * time.Millisecond,
		Timeout:   25 * time.Millisecond,
	}, pr.rt.Bound(router.ChanFD))
	cfg := tc.cfg
	cfg.PID = pid
	cfg.Seed = uint64(pid) + uint64(epoch)<<16 + 1
	eng, err := New(cfg, pr.store, pr.rt.Bound(router.ChanConsensus), pr.det)
	if err != nil {
		tc.t.Fatalf("new engine %v: %v", pid, err)
	}
	pr.eng = eng
	pr.rt.Handle(router.ChanFD, pr.det.OnMessage)
	pr.rt.Handle(router.ChanConsensus, eng.OnMessage)
	ctx, cancel := context.WithCancel(context.Background())
	pr.cancel = cancel
	pr.rt.Start(ctx)
	pr.det.Start(ctx)
	eng.Start(ctx)
}

// crash stops process pid, losing all volatile state.
func (tc *testCluster) crash(pid ids.ProcessID) {
	pr := tc.procs[pid]
	pr.cancel()
	pr.rt.Stop()
	pr.det.Stop()
	pr.eng.Stop()
	pr.rt, pr.det, pr.eng = nil, nil, nil
}

func (tc *testCluster) stopAll() {
	for p := range tc.procs {
		if tc.procs[p].eng != nil {
			tc.crash(ids.ProcessID(p))
		}
	}
}

func val(p int, k uint64) []byte {
	return []byte(fmt.Sprintf("v-%d-%d", p, k))
}

func TestDecideSingleInstance(t *testing.T) {
	for _, policy := range []Policy{PolicyLeader, PolicyRotating} {
		t.Run(policy.String(), func(t *testing.T) {
			tc := newTestCluster(t, 3, policy, transport.MemOptions{Seed: 7})
			defer tc.stopAll()

			for p, pr := range tc.procs {
				if err := pr.eng.Propose(0, val(p, 0)); err != nil {
					t.Fatalf("propose: %v", err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var first []byte
			for p, pr := range tc.procs {
				got, err := pr.eng.WaitDecided(ctx, 0)
				if err != nil {
					t.Fatalf("p%d wait: %v", p, err)
				}
				if first == nil {
					first = got
				} else if !bytes.Equal(first, got) {
					t.Fatalf("agreement violated: %q vs %q", first, got)
				}
			}
			// Uniform Validity: the decision is one of the proposals.
			valid := false
			for p := range tc.procs {
				if bytes.Equal(first, val(p, 0)) {
					valid = true
				}
			}
			if !valid {
				t.Fatalf("decision %q was never proposed", first)
			}
		})
	}
}

func TestDecideManyInstancesLossyNetwork(t *testing.T) {
	tc := newTestCluster(t, 3, PolicyLeader, transport.MemOptions{
		Seed:     11,
		Loss:     0.10,
		Dup:      0.05,
		MinDelay: 0,
		MaxDelay: 2 * time.Millisecond,
	})
	defer tc.stopAll()

	const instances = 20
	for k := uint64(0); k < instances; k++ {
		for p, pr := range tc.procs {
			if err := pr.eng.Propose(k, val(p, k)); err != nil {
				t.Fatalf("propose: %v", err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for k := uint64(0); k < instances; k++ {
		var first []byte
		for p, pr := range tc.procs {
			got, err := pr.eng.WaitDecided(ctx, k)
			if err != nil {
				t.Fatalf("p%d k=%d wait: %v", p, k, err)
			}
			if first == nil {
				first = got
			} else if !bytes.Equal(first, got) {
				t.Fatalf("k=%d agreement violated", k)
			}
		}
	}
}

func TestProposeIdempotent(t *testing.T) {
	tc := newTestCluster(t, 3, PolicyLeader, transport.MemOptions{Seed: 3})
	defer tc.stopAll()

	pr := tc.procs[0]
	if err := pr.eng.Propose(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// P4: re-proposing a different value keeps the original.
	if err := pr.eng.Propose(0, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, ok := pr.eng.Proposal(0)
	if !ok || !bytes.Equal(got, []byte("first")) {
		t.Fatalf("proposal changed: %q ok=%v", got, ok)
	}
}

func TestCrashRecoverKeepsDecision(t *testing.T) {
	tc := newTestCluster(t, 3, PolicyLeader, transport.MemOptions{Seed: 5})
	defer tc.stopAll()

	for p, pr := range tc.procs {
		if err := pr.eng.Propose(0, val(p, 0)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	want, err := tc.procs[1].eng.WaitDecided(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Crash p1 and recover it: P5 — the decision must be stable, straight
	// from the local log without any network round.
	tc.crash(1)
	tc.start(1, 2)
	got, ok := tc.procs[1].eng.DecidedLocal(0)
	if !ok {
		// The decision may not have been logged locally before the
		// crash (only a majority has it); it must still be learnable.
		got, err = tc.procs[1].eng.WaitDecided(ctx, 0)
		if err != nil {
			t.Fatalf("recovered wait: %v", err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("decision changed across crash: %q vs %q", got, want)
	}
}

func TestCrashRecoverKeepsProposal(t *testing.T) {
	tc := newTestCluster(t, 3, PolicyLeader, transport.MemOptions{Seed: 9})
	defer tc.stopAll()

	if err := tc.procs[2].eng.Propose(7, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	tc.crash(2)
	tc.start(2, 2)
	got, ok := tc.procs[2].eng.Proposal(7)
	if !ok || !bytes.Equal(got, []byte("survives")) {
		t.Fatalf("proposal lost across crash: %q ok=%v", got, ok)
	}
}

func TestDecideWithMinorityCrashed(t *testing.T) {
	tc := newTestCluster(t, 5, PolicyLeader, transport.MemOptions{Seed: 13})
	defer tc.stopAll()

	// Crash 2 of 5 (a minority): the rest must still decide.
	tc.crash(3)
	tc.crash(4)
	for p := 0; p < 3; p++ {
		if err := tc.procs[p].eng.Propose(0, val(p, 0)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var first []byte
	for p := 0; p < 3; p++ {
		got, err := tc.procs[p].eng.WaitDecided(ctx, 0)
		if err != nil {
			t.Fatalf("p%d: %v", p, err)
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Fatal("agreement violated")
		}
	}
}

func TestLeaderCrashHandsOff(t *testing.T) {
	tc := newTestCluster(t, 3, PolicyLeader, transport.MemOptions{Seed: 17})
	defer tc.stopAll()

	// Let the detector see p0 alive, then kill it before proposing.
	time.Sleep(30 * time.Millisecond)
	tc.crash(0)
	for p := 1; p < 3; p++ {
		if err := tc.procs[p].eng.Propose(0, val(p, 0)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := tc.procs[1].eng.WaitDecided(ctx, 0)
	if err != nil {
		t.Fatalf("p1: %v", err)
	}
	b, err := tc.procs[2].eng.WaitDecided(ctx, 0)
	if err != nil {
		t.Fatalf("p2: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("agreement violated after leader crash")
	}
}

func TestDiscardBelow(t *testing.T) {
	tc := newTestCluster(t, 3, PolicyLeader, transport.MemOptions{Seed: 19})
	defer tc.stopAll()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for k := uint64(0); k < 5; k++ {
		for p, pr := range tc.procs {
			if err := pr.eng.Propose(k, val(p, k)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tc.procs[0].eng.WaitDecided(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.procs[0].eng.DiscardBelow(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := tc.procs[0].eng.Proposal(2); ok {
		t.Fatal("proposal 2 should be discarded")
	}
	if _, ok := tc.procs[0].eng.DecidedLocal(2); ok {
		t.Fatal("decision 2 should be discarded")
	}
	if err := tc.procs[0].eng.Propose(2, []byte("x")); err == nil {
		t.Fatal("propose below floor should fail")
	}
	// Instances at/above the floor are intact.
	if _, ok := tc.procs[0].eng.DecidedLocal(4); !ok {
		t.Fatal("decision 4 should survive")
	}
	// Keys below the floor are gone from stable storage.
	keys, err := tc.procs[0].store.List("cons/")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		_, k, ok := parseKey(key)
		if ok && k < 3 {
			t.Fatalf("stale key %s", key)
		}
	}
}

func TestRecoveryResumesInFlightInstance(t *testing.T) {
	tc := newTestCluster(t, 3, PolicyLeader, transport.MemOptions{Seed: 23})
	defer tc.stopAll()

	// p0 proposes alone and crashes immediately: no decision yet is
	// likely. After recovery the engine must re-drive the instance
	// because the proposal is logged but no decision is.
	if err := tc.procs[0].eng.Propose(0, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	tc.crash(0)
	tc.start(0, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := tc.procs[0].eng.WaitDecided(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("solo")) {
		t.Fatalf("decision %q, want the only proposal", got)
	}
}
