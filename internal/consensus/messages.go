package consensus

import (
	"repro/internal/wire"
)

// Message kinds on the consensus channel.
const (
	mPrepare     uint8 = 1 // coordinator -> all: claim ballot b for instance k
	mPromise     uint8 = 2 // acceptor -> coordinator: promise + accepted pair
	mAccept      uint8 = 3 // coordinator -> all: accept (b, v)
	mAccepted    uint8 = 4 // acceptor -> coordinator: accepted b
	mNack        uint8 = 5 // acceptor -> coordinator: ballot refused, promised attached
	mDecide      uint8 = 6 // anyone -> anyone: instance k decided v
	mDecideReq   uint8 = 7 // learner -> all: please resend decisions of [k, k+span]
	mForgotten   uint8 = 8 // responder -> learner: instance k was GC'd; floor attached
	mDecideMulti uint8 = 9 // responder -> learner: batched decisions for a window

	// Stable-sequencer lease (the latency fast path). A lease is a ranged
	// promise: the grant attests that the acceptor has no accepted or
	// decided state in any instance >= k (the request's fromK) and will
	// refuse ballots < b there from anyone else, letting the holder run
	// accept-phase-only rounds at ballot b. k carries fromK; b the lease
	// ballot; a nack's promised carries the conflicting ballot.
	mLeaseReq  uint8 = 10 // would-be holder -> all: grant me (fromK, b)
	mLeaseAck  uint8 = 11 // acceptor -> holder: granted (durably logged)
	mLeaseNack uint8 = 12 // acceptor -> holder: refused; conflict attached
)

// decideWindow is the extra window a learner asks for with every decide
// request, so one request covers instances [k, k+decideWindow]: with a
// pipelined broadcast layer several instances wait concurrently, and one
// request catching them all up saves a round-trip per instance. The
// requester, the responder's span clamp, and the decoder's reply cap all
// share this single constant.
const decideWindow = 16

// DecideWindow is the learner ask-ahead span, exported as the absolute
// ceiling for a live pipeline-window resize: a sequencer keeping more than
// this many rounds in flight would outrun what one decide request can pull
// back in, so the autotuner's depth bound clamps here.
const DecideWindow = decideWindow

// decision is one (instance, value) pair inside an mDecideMulti reply.
type decision struct {
	k   uint64
	val []byte
}

type message struct {
	kind uint8
	k    uint64 // instance
	b    uint64 // ballot
	// Promise fields: the acceptor's accepted pair, if any.
	hasAcc bool
	accB   uint64
	val    []byte // Promise: accepted value; Accept/Decide: the value
	// Nack/Forgotten: the acceptor's current promise / GC floor.
	promised uint64
	// DecideReq: how many instances past k the learner also wants (a
	// pipelined learner asks for its whole window in one request).
	span uint64
	// DecideMulti: the decided instances being returned; k is the first
	// entry's instance (so the floor check applies to a real instance).
	multi []decision
}

// encodeTo appends the message to w (a pooled writer on the send path:
// every transport layer copies synchronously, so the buffer is reusable
// the moment the send call returns).
func (m message) encodeTo(w *wire.Writer) {
	w.U8(m.kind)
	w.U64(m.k)
	w.U64(m.b)
	w.Bool(m.hasAcc)
	w.U64(m.accB)
	w.Bytes32(m.val)
	w.U64(m.promised)
	// The window fields ride only on the message kinds that use them, so
	// the hot-path ballot messages pay nothing for the learner protocol.
	switch m.kind {
	case mDecideReq:
		w.U64(m.span)
	case mDecideMulti:
		w.U64(uint64(len(m.multi)))
		for _, d := range m.multi {
			w.U64(d.k)
			w.Bytes32(d.val)
		}
	}
}

// encode allocates a standalone encoding (tests and retained buffers).
func (m message) encode() []byte {
	w := wire.NewWriter(24 + len(m.val))
	m.encodeTo(w)
	return w.Bytes()
}

func decodeMessage(payload []byte) (message, error) {
	r := wire.NewReader(payload)
	var m message
	m.kind = r.U8()
	m.k = r.U64()
	m.b = r.U64()
	m.hasAcc = r.Bool()
	m.accB = r.U64()
	m.val = r.BytesCopy()
	m.promised = r.U64()
	switch m.kind {
	case mDecideReq:
		m.span = r.U64()
	case mDecideMulti:
		n := r.U64()
		if r.Err() == nil && n > 0 {
			if n > decideWindow+1 {
				n = decideWindow + 1
			}
			m.multi = make([]decision, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				m.multi = append(m.multi, decision{k: r.U64(), val: r.BytesCopy()})
			}
		}
	}
	return m, r.Done()
}
