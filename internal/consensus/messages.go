package consensus

import (
	"repro/internal/wire"
)

// Message kinds on the consensus channel.
const (
	mPrepare   uint8 = 1 // coordinator -> all: claim ballot b for instance k
	mPromise   uint8 = 2 // acceptor -> coordinator: promise + accepted pair
	mAccept    uint8 = 3 // coordinator -> all: accept (b, v)
	mAccepted  uint8 = 4 // acceptor -> coordinator: accepted b
	mNack      uint8 = 5 // acceptor -> coordinator: ballot refused, promised attached
	mDecide    uint8 = 6 // anyone -> anyone: instance k decided v
	mDecideReq uint8 = 7 // learner -> all: please resend decision of k
	mForgotten uint8 = 8 // responder -> learner: instance k was GC'd; floor attached
)

type message struct {
	kind uint8
	k    uint64 // instance
	b    uint64 // ballot
	// Promise fields: the acceptor's accepted pair, if any.
	hasAcc bool
	accB   uint64
	val    []byte // Promise: accepted value; Accept/Decide: the value
	// Nack/Forgotten: the acceptor's current promise / GC floor.
	promised uint64
}

func (m message) encode() []byte {
	w := wire.NewWriter(16 + len(m.val))
	w.U8(m.kind)
	w.U64(m.k)
	w.U64(m.b)
	w.Bool(m.hasAcc)
	w.U64(m.accB)
	w.Bytes32(m.val)
	w.U64(m.promised)
	return w.Bytes()
}

func decodeMessage(payload []byte) (message, error) {
	r := wire.NewReader(payload)
	var m message
	m.kind = r.U8()
	m.k = r.U64()
	m.b = r.U64()
	m.hasAcc = r.Bool()
	m.accB = r.U64()
	m.val = r.BytesCopy()
	m.promised = r.U64()
	return m, r.Done()
}
