package consensus

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/storage"
	"repro/internal/transport"
)

// newLeaseCluster is newTestCluster with the stable-sequencer lease on
// (PolicyLeader, as the lease requires a stable proposer to pay off).
func newLeaseCluster(t *testing.T, n int, netOpts transport.MemOptions, ttl time.Duration) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:   t,
		net: transport.NewMem(n, netOpts),
		cfg: Config{
			N:        n,
			Policy:   PolicyLeader,
			RetryMin: 3 * time.Millisecond,
			RetryMax: 40 * time.Millisecond,
			Lease:    true,
			LeaseTTL: ttl,
		},
	}
	t.Cleanup(tc.net.Close)
	for p := 0; p < n; p++ {
		tc.procs = append(tc.procs, &testProc{
			pid:   ids.ProcessID(p),
			store: storage.NewMem(),
		})
	}
	for p := range tc.procs {
		tc.start(ids.ProcessID(p), 1)
	}
	return tc
}

// decideFrom drives instances [from, to) from a single proposer and
// checks all live processes decide the same value for each.
func decideFrom(tc *testCluster, proposer int, from, to uint64) {
	tc.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for k := from; k < to; k++ {
		if err := tc.procs[proposer].eng.Propose(k, val(proposer, k)); err != nil {
			tc.t.Fatalf("propose %d: %v", k, err)
		}
		var first []byte
		for p, pr := range tc.procs {
			if pr.eng == nil {
				continue
			}
			got, err := pr.eng.WaitDecided(ctx, k)
			if err != nil {
				tc.t.Fatalf("p%d wait %d: %v", p, k, err)
			}
			if first == nil {
				first = got
			} else if !bytes.Equal(first, got) {
				tc.t.Fatalf("agreement violated at %d: %q vs %q", k, first, got)
			}
		}
		if !bytes.Equal(first, val(proposer, k)) {
			tc.t.Fatalf("instance %d decided %q, want the sole proposal %q", k, first, val(proposer, k))
		}
	}
}

// TestLeaseFastRoundsSkipPrepare: with a stable proposer, the lease turns
// the steady state into accept-phase-only rounds. The first instance (or
// few, under message loss) runs full consensus and piggybacks the lease
// acquisition; subsequent instances from the same proposer must decide
// without a prepare phase, which the FastRounds counter certifies.
func TestLeaseFastRoundsSkipPrepare(t *testing.T) {
	tc := newLeaseCluster(t, 3, transport.MemOptions{Seed: 3}, time.Second)
	defer tc.stopAll()

	const rounds = 30
	decideFrom(tc, 0, 0, rounds)

	ls := tc.procs[0].eng.LeaseStats()
	if ls.Acquired == 0 {
		t.Fatalf("stable proposer never acquired a lease: %+v", ls)
	}
	if ls.FastRounds < rounds/2 {
		t.Fatalf("lease held but fast path barely used: %d fast of %d rounds (%+v)", ls.FastRounds, rounds, ls)
	}
	if !ls.Held {
		t.Fatalf("lease dropped on a calm network: %+v", ls)
	}
}

// TestLeaseRevokeFallsBackToFullConsensus: an explicit revocation (the
// suspicion-burst hook the soaks use) must force the next round through
// full consensus — and the proposer then re-acquires and returns to the
// fast path. Correctness is unaffected throughout.
func TestLeaseRevokeFallsBackToFullConsensus(t *testing.T) {
	tc := newLeaseCluster(t, 3, transport.MemOptions{Seed: 5}, time.Second)
	defer tc.stopAll()

	decideFrom(tc, 0, 0, 10)
	before := tc.procs[0].eng.LeaseStats()
	if before.FastRounds == 0 {
		t.Fatalf("precondition: fast path never engaged: %+v", before)
	}

	tc.procs[0].eng.RevokeLease()
	if ls := tc.procs[0].eng.LeaseStats(); ls.Held {
		t.Fatalf("lease still held after revoke: %+v", ls)
	}

	decideFrom(tc, 0, 10, 20)
	after := tc.procs[0].eng.LeaseStats()
	if after.Fallbacks <= before.Fallbacks {
		t.Fatalf("revocation not recorded as a fallback: before=%+v after=%+v", before, after)
	}
	if after.Acquired <= before.Acquired {
		t.Fatalf("proposer never re-acquired after revoke: before=%+v after=%+v", before, after)
	}
	if after.FastRounds <= before.FastRounds {
		t.Fatalf("fast path never resumed after re-acquisition: before=%+v after=%+v", before, after)
	}
}

// TestLeaseSafeUnderContention: the lease is an optimization, never a
// correctness lever. With every process proposing every instance over a
// lossy, reordering network, agreement and validity must hold exactly as
// without the lease — acceptor-side grant bounds make a stale leaseholder
// lose to any higher classic ballot.
func TestLeaseSafeUnderContention(t *testing.T) {
	tc := newLeaseCluster(t, 3, transport.MemOptions{
		Seed:     17,
		Loss:     0.10,
		Dup:      0.05,
		MaxDelay: 2 * time.Millisecond,
	}, 200*time.Millisecond)
	defer tc.stopAll()

	const rounds = 25
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for k := uint64(0); k < rounds; k++ {
		for p, pr := range tc.procs {
			if err := pr.eng.Propose(k, val(p, k)); err != nil {
				t.Fatalf("p%d propose %d: %v", p, k, err)
			}
		}
		var first []byte
		for p, pr := range tc.procs {
			got, err := pr.eng.WaitDecided(ctx, k)
			if err != nil {
				t.Fatalf("p%d wait %d: %v", p, k, err)
			}
			if first == nil {
				first = got
			} else if !bytes.Equal(first, got) {
				t.Fatalf("agreement violated at %d: %q vs %q", k, first, got)
			}
		}
		valid := false
		for p := range tc.procs {
			if bytes.Equal(first, val(p, k)) {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("instance %d decided %q, never proposed", k, first)
		}
	}
}

// TestLeaseSurvivesHolderCrash: the lease itself is volatile holder
// state, but acceptor grants are durable. After the leaseholder crashes
// and recovers with a new incarnation, liveness must resume: the
// recovered process (or another) decides further instances, and earlier
// decisions are intact.
func TestLeaseSurvivesHolderCrash(t *testing.T) {
	tc := newLeaseCluster(t, 3, transport.MemOptions{Seed: 23}, time.Second)
	defer tc.stopAll()

	decideFrom(tc, 0, 0, 8)

	tc.crash(0)
	time.Sleep(40 * time.Millisecond) // let suspicion fire
	tc.start(0, 2)

	// A fresh incarnation holds no lease — it must re-run full consensus
	// (or re-acquire) yet still decide, and old decisions must replay.
	decideFrom(tc, 0, 8, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := tc.procs[0].eng.WaitDecided(ctx, 3)
	if err != nil {
		t.Fatalf("recovered process lost instance 3: %v", err)
	}
	if !bytes.Equal(got, val(0, 3)) {
		t.Fatalf("instance 3 changed across crash: %q", got)
	}
}
