package consensus

import (
	"testing"

	"repro/internal/wire"
)

// BenchmarkMessageEncode covers the hottest consensus wire paths — the
// ballot messages every round exchanges O(n) times. With the pooled
// writer (encodeTo + wire.GetWriter) the steady-state send path stops
// allocating a buffer per message.
func BenchmarkMessageEncode(b *testing.B) {
	val := make([]byte, 256)
	msgs := map[string]message{
		"prepare":  {kind: mPrepare, k: 42, b: 7},
		"promise":  {kind: mPromise, k: 42, b: 7, hasAcc: true, accB: 3, val: val},
		"accept":   {kind: mAccept, k: 42, b: 7, val: val},
		"accepted": {kind: mAccepted, k: 42, b: 7},
		"decide":   {kind: mDecide, k: 42, val: val},
	}
	for name, m := range msgs {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := wire.GetWriter(24 + len(m.val))
				m.encodeTo(w)
				if w.Len() == 0 {
					b.Fatal("empty encode")
				}
				wire.PutWriter(w)
			}
		})
	}
}

// BenchmarkMessageDecode measures the receive path of the same messages.
func BenchmarkMessageDecode(b *testing.B) {
	val := make([]byte, 256)
	msgs := map[string]message{
		"prepare": {kind: mPrepare, k: 42, b: 7},
		"accept":  {kind: mAccept, k: 42, b: 7, val: val},
	}
	for name, m := range msgs {
		buf := m.encode()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := decodeMessage(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
