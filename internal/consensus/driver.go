package consensus

import (
	"context"
	"time"

	"repro/internal/ids"
	"repro/internal/wire"
)

// startDriverLocked launches the per-instance driver goroutine if it is not
// already running. e.mu held.
func (e *Engine) startDriverLocked(in *instance) {
	if in.driving || in.hasDec || in.gone || e.stopped || e.ctx == nil {
		return
	}
	in.driving = true
	e.wg.Add(1)
	go e.drive(in)
}

// ballotFor computes the ballot of logical attempt a for this engine's
// policy. Ballots are globally unique: under PolicyLeader every process
// embeds its own pid; under PolicyRotating attempt a belongs exclusively to
// process a mod n.
func (e *Engine) ballotFor(a uint64) uint64 {
	n := uint64(e.cfg.N)
	switch e.cfg.Policy {
	case PolicyRotating:
		return a*n + a%n + 1
	default:
		return a*n + uint64(e.cfg.PID) + 1
	}
}

// attemptAbove returns the smallest attempt whose ballot exceeds b.
func (e *Engine) attemptAbove(b uint64) uint64 {
	return b/uint64(e.cfg.N) + 1
}

// myTurn reports whether this process should coordinate attempt a.
// stuck counts consecutive idle waits; after enough of them the process
// drives regardless (ballot safety makes competition harmless, and this
// guarantees termination even if the detector's hint is wrong).
func (e *Engine) myTurn(a uint64, stuck int) bool {
	const graceWaits = 8
	switch e.cfg.Policy {
	case PolicyRotating:
		owner := ids.ProcessID(a % uint64(e.cfg.N))
		if owner == e.cfg.PID {
			return true
		}
		return stuck > graceWaits
	default:
		if e.fd == nil {
			return true
		}
		if e.fd.Leader() == e.cfg.PID {
			return true
		}
		return stuck > graceWaits
	}
}

// skipTurn reports whether attempt a's owner is suspected, letting rotating
// processes advance without waiting the full timeout.
func (e *Engine) skipTurn(a uint64) bool {
	if e.cfg.Policy != PolicyRotating || e.fd == nil {
		return false
	}
	owner := ids.ProcessID(a % uint64(e.cfg.N))
	return owner != e.cfg.PID && e.fd.Suspects(owner)
}

// backoff returns the wait before re-examining the instance, growing with
// consecutive failures and jittered to break ties between competitors.
func (e *Engine) backoff(fails int) time.Duration {
	d := e.cfg.RetryMin << uint(min(fails, 5))
	if d > e.cfg.RetryMax {
		d = e.cfg.RetryMax
	}
	e.rngMu.Lock()
	j := time.Duration(e.rng.Int64N(int64(e.cfg.RetryMin) + 1))
	e.rngMu.Unlock()
	return d + j
}

// drive pushes instance in to a decision. It acts as coordinator when the
// policy says so and as a decision requester otherwise. It exits when the
// instance decides, is discarded, or the incarnation ends.
func (e *Engine) drive(in *instance) {
	defer e.wg.Done()
	ctx := e.ctx
	fails := 0
	stuck := 0
	var attempt uint64

	// Resume above anything this process ever promised: our own logged
	// promise is a lower bound on ballots already in circulation.
	e.mu.Lock()
	attempt = e.attemptAbove(in.promised)
	e.mu.Unlock()

	for {
		if ctx.Err() != nil {
			return
		}
		e.mu.Lock()
		if in.hasDec || in.decPending || in.gone || in.wasForgot {
			e.mu.Unlock()
			return
		}
		hasProp := in.hasProp
		e.mu.Unlock()

		if e.skipTurn(attempt) {
			attempt++
			continue
		}
		if !hasProp || !e.myTurn(attempt, stuck) {
			// Learner mode: ask around for the decision (and the rest
			// of the pipeline window), then wait.
			e.send(ids.Nobody, message{kind: mDecideReq, k: in.k, span: decideWindow})
			stuck++
			if !e.waitWake(ctx, in, e.backoff(fails)) {
				return
			}
			if e.cfg.Policy == PolicyRotating {
				attempt++
			}
			continue
		}
		stuck = 0

		// Lease fast path: while this process holds the stable-sequencer
		// lease covering in.k, skip phase 1 and push its own proposal at
		// the lease ballot. Any failure drops the lease and falls back to
		// a full ballot.
		if b, v, fast := e.leaseBallot(in); fast {
			decided, higher := e.runAcceptPhase(ctx, in, b, v)
			e.leaseRoundDone(decided)
			if decided {
				return
			}
			if higher > 0 {
				attempt = e.attemptAbove(higher)
			} else {
				attempt = e.attemptAbove(b)
			}
			fails++
			if !e.waitWake(ctx, in, e.backoff(fails)) {
				return
			}
			continue
		}

		decided, higher := e.runBallot(ctx, in, attempt)
		if decided {
			// The round just decided under this process's classic
			// coordination: the moment to (re-)establish the lease for
			// the instances after it.
			e.maybeAcquireLease(in.k + 1)
			return
		}
		if higher > 0 {
			attempt = e.attemptAbove(higher)
		} else {
			attempt++
		}
		fails++
		if !e.waitWake(ctx, in, e.backoff(fails)) {
			return
		}
		e.mu.Lock()
		done := in.hasDec || in.gone
		e.mu.Unlock()
		if done {
			return
		}
	}
}

// waitWake sleeps up to d or until the instance is poked. Returns false when
// the incarnation is over.
func (e *Engine) waitWake(ctx context.Context, in *instance, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-in.progress:
		return true
	case <-timer.C:
		return true
	}
}

// runBallot executes one prepare/accept round as coordinator. It returns
// decided=true if the instance decided (by us or concurrently), or the
// highest conflicting ballot seen in a nack (0 if none).
func (e *Engine) runBallot(ctx context.Context, in *instance, attempt uint64) (decided bool, higher uint64) {
	b := e.ballotFor(attempt)

	e.mu.Lock()
	if in.hasDec || in.gone {
		e.mu.Unlock()
		return true, 0
	}
	in.curBallot = b
	in.phase = 1
	clear(in.promises)
	clear(in.accepts)
	in.maxNack = 0
	e.mu.Unlock()

	e.send(ids.Nobody, message{kind: mPrepare, k: in.k, b: b})

	// Phase 1: collect promises from a majority.
	deadline := time.Now().Add(e.phaseTimeout())
	for {
		e.mu.Lock()
		if in.hasDec || in.gone {
			e.mu.Unlock()
			return true, 0
		}
		if in.maxNack > b {
			higher = in.maxNack
			in.phase = 0
			e.mu.Unlock()
			return false, higher
		}
		if len(in.promises) >= Quorum(e.cfg.N) {
			e.mu.Unlock()
			break
		}
		e.mu.Unlock()
		if !e.waitDeadline(ctx, in, deadline) {
			return e.isDecided(in), 0
		}
	}

	// Choose the value: the accepted value with the highest ballot wins;
	// otherwise our own logged proposal (Uniform Validity).
	e.mu.Lock()
	var v []byte
	var bestB uint64
	found := false
	for _, pi := range in.promises {
		if pi.hasAcc && (!found || pi.accB > bestB) {
			bestB = pi.accB
			v = pi.accV
			found = true
		}
	}
	if !found {
		v = in.proposal
	}
	e.mu.Unlock()

	return e.runAcceptPhase(ctx, in, b, v)
}

// runAcceptPhase executes phase 2 at ballot b with value v: broadcast the
// accept, collect a majority, decide. It is the whole round on the lease
// fast path (where the grant quorum's attestation replaces phase 1) and
// the second half of a classic ballot.
func (e *Engine) runAcceptPhase(ctx context.Context, in *instance, b uint64, v []byte) (decided bool, higher uint64) {
	e.mu.Lock()
	if in.hasDec || in.gone {
		e.mu.Unlock()
		return true, 0
	}
	in.curBallot = b
	in.phase = 2
	clear(in.accepts)
	in.maxNack = 0
	e.mu.Unlock()

	e.send(ids.Nobody, message{kind: mAccept, k: in.k, b: b, val: v})

	// Phase 2: collect accepts from a majority.
	deadline := time.Now().Add(e.phaseTimeout())
	for {
		e.mu.Lock()
		if in.hasDec || in.gone {
			e.mu.Unlock()
			return true, 0
		}
		if in.maxNack > b {
			higher = in.maxNack
			in.phase = 0
			e.mu.Unlock()
			return false, higher
		}
		if len(in.accepts) >= Quorum(e.cfg.N) {
			// Chosen: decide and tell everyone. Announcing before our
			// own decision cell is durable is safe — the value is
			// chosen by the quorum's durable acceptor cells; locally,
			// hasDec (and so WaitDecided/commit) flips only when the
			// cell's completion fires.
			e.decideLocked(in, v)
			dec := in.hasDec || in.decPending
			e.mu.Unlock()
			if dec {
				e.send(ids.Nobody, message{kind: mDecide, k: in.k, val: v})
			}
			return dec, 0
		}
		e.mu.Unlock()
		if !e.waitDeadline(ctx, in, deadline) {
			return e.isDecided(in), 0
		}
	}
}

func (e *Engine) isDecided(in *instance) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return in.hasDec || in.decPending
}

// waitDeadline waits for a poke or the deadline; false means give up this
// ballot (timeout or shutdown).
func (e *Engine) waitDeadline(ctx context.Context, in *instance, deadline time.Time) bool {
	remain := time.Until(deadline)
	if remain <= 0 {
		return false
	}
	timer := time.NewTimer(remain)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-in.progress:
		return true
	case <-timer.C:
		return false
	}
}

// phaseTimeout is the per-phase wait for quorum responses.
func (e *Engine) phaseTimeout() time.Duration {
	return e.cfg.RetryMax
}

// send transmits to one process, or to all when to is Nobody. The encode
// buffer is pooled: Send/Multisend copy before returning at every
// transport layer, so it is released right after the call.
func (e *Engine) send(to ids.ProcessID, m message) {
	w := wire.GetWriter(24 + len(m.val))
	m.encodeTo(w)
	if to == ids.Nobody {
		e.net.Multisend(w.Bytes())
	} else {
		e.net.Send(to, w.Bytes())
	}
	wire.PutWriter(w)
}
