package consensus

import (
	"repro/internal/ids"
)

// OnMessage is the router handler for the consensus channel. It runs on the
// router's receive goroutine; every branch issues at most one stable-storage
// write and one send, except decide-request/decide-multi, which serve a
// bounded window of decisions (decideWindow) for pipelined learners. Writes
// are issued asynchronously and the dependent send fires on the completion,
// so the receive goroutine never blocks on an fsync and the writes of all
// in-flight instances coalesce into shared group commits.
func (e *Engine) OnMessage(from ids.ProcessID, payload []byte) {
	m, err := decodeMessage(payload)
	if err != nil {
		return // malformed packets are dropped like lost packets
	}

	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	if m.kind == mDecideMulti {
		// Filtered per entry: a reply whose first instance fell under
		// the floor may still carry decisions above it.
		for _, d := range m.multi {
			if d.k < e.floor {
				continue
			}
			e.decideLocked(e.getLocked(d.k), d.val)
		}
		e.mu.Unlock()
		return
	}
	if m.kind == mLeaseReq || m.kind == mLeaseAck || m.kind == mLeaseNack {
		// Before the floor check: lease messages carry a range start in
		// m.k, not a live instance (onLeaseReqLocked applies its own
		// floor rule).
		e.onLeaseMsg(from, m) // unlocks e.mu
		return
	}
	if m.k < e.floor {
		// The instance was garbage-collected under a checkpoint; the
		// asker will catch up through the broadcast layer's state
		// transfer (§5.3).
		floor := e.floor
		e.mu.Unlock()
		if m.kind == mPrepare || m.kind == mAccept || m.kind == mDecideReq {
			e.send(from, message{kind: mForgotten, k: m.k, promised: floor})
		}
		return
	}
	in := e.getLocked(m.k)

	switch m.kind {
	case mPrepare:
		if in.hasDec {
			v := in.decided
			e.mu.Unlock()
			e.send(from, message{kind: mDecide, k: m.k, val: v})
			return
		}
		// The effective promise includes any lease grant covering this
		// instance: a granted range behaves like a promise at the lease
		// ballot in every covered instance (that refusal is the whole
		// point of the grant).
		if m.b > max(in.promised, e.grantBoundLocked(m.k)) {
			in.promised = m.b
			reply := message{
				kind:   mPromise,
				k:      m.k,
				b:      m.b,
				hasAcc: in.hasAcc,
				accB:   in.accB,
				val:    in.accV,
			}
			// Issue the acceptor cell (under e.mu, so cells reach the
			// log in promise order) and promise on the wire only once
			// it is durable — concurrent instances share the fsync.
			c := e.logAcceptorLocked(in)
			e.mu.Unlock()
			e.replyWhenDurable(c, from, reply)
			return
		}
		promised := max(in.promised, e.grantBoundLocked(m.k))
		e.mu.Unlock()
		e.send(from, message{kind: mNack, k: m.k, b: m.b, promised: promised})

	case mAccept:
		if in.hasDec {
			v := in.decided
			e.mu.Unlock()
			e.send(from, message{kind: mDecide, k: m.k, val: v})
			return
		}
		// The lease holder's own accepts arrive at exactly the grant
		// ballot, which passes (>=); everyone else is below it and is
		// nacked with the bound so they re-ballot above the lease.
		if m.b >= max(in.promised, e.grantBoundLocked(m.k)) {
			in.promised = m.b
			in.accB = m.b
			in.accV = m.val
			in.hasAcc = true
			c := e.logAcceptorLocked(in)
			e.mu.Unlock()
			e.replyWhenDurable(c, from, message{kind: mAccepted, k: m.k, b: m.b})
			return
		}
		promised := max(in.promised, e.grantBoundLocked(m.k))
		e.mu.Unlock()
		e.send(from, message{kind: mNack, k: m.k, b: m.b, promised: promised})

	case mPromise:
		if in.phase == 1 && m.b == in.curBallot {
			in.promises[from] = promiseInfo{hasAcc: m.hasAcc, accB: m.accB, accV: m.val}
			in.wake()
		}
		e.mu.Unlock()

	case mAccepted:
		if in.phase == 2 && m.b == in.curBallot {
			in.accepts[from] = true
			in.wake()
		}
		e.mu.Unlock()

	case mNack:
		if m.b == in.curBallot && m.promised > in.maxNack {
			in.maxNack = m.promised
			in.wake()
		}
		e.mu.Unlock()

	case mDecide:
		e.decideLocked(in, m.val)
		e.mu.Unlock()

	case mDecideReq:
		// Collect every known decision in the learner's window
		// [k, k+span] so one request catches a pipelined learner fully
		// up instead of costing a round-trip per instance.
		span := m.span
		if span > decideWindow {
			span = decideWindow
		}
		var out []decision
		if in.hasDec {
			out = append(out, decision{k: m.k, val: in.decided})
		}
		for i := uint64(1); i <= span; i++ {
			if other, ok := e.insts[m.k+i]; ok && other.hasDec {
				out = append(out, decision{k: m.k + i, val: other.decided})
			}
		}
		e.mu.Unlock()
		switch {
		case len(out) == 1 && out[0].k == m.k:
			e.send(from, message{kind: mDecide, k: m.k, val: out[0].val})
		case len(out) > 0:
			e.send(from, message{kind: mDecideMulti, k: out[0].k, multi: out})
		}

	case mForgotten:
		// The peer GC'd this instance under a checkpoint. If its GC
		// floor is above this instance, the decision may be
		// unreachable through Consensus: release waiters so the
		// broadcast layer falls back to state transfer (§5.3).
		if m.promised > m.k {
			in.markForgotLocked()
		}
		e.mu.Unlock()

	default:
		e.mu.Unlock()
	}
}
