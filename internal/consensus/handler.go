package consensus

import (
	"repro/internal/ids"
)

// OnMessage is the router handler for the consensus channel. It runs on the
// router's receive goroutine; every branch does at most one stable-storage
// write and one send.
func (e *Engine) OnMessage(from ids.ProcessID, payload []byte) {
	m, err := decodeMessage(payload)
	if err != nil {
		return // malformed packets are dropped like lost packets
	}

	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	if m.k < e.floor {
		// The instance was garbage-collected under a checkpoint; the
		// asker will catch up through the broadcast layer's state
		// transfer (§5.3).
		floor := e.floor
		e.mu.Unlock()
		if m.kind == mPrepare || m.kind == mAccept || m.kind == mDecideReq {
			e.send(from, message{kind: mForgotten, k: m.k, promised: floor})
		}
		return
	}
	in := e.getLocked(m.k)

	switch m.kind {
	case mPrepare:
		if in.hasDec {
			v := in.decided
			e.mu.Unlock()
			e.send(from, message{kind: mDecide, k: m.k, val: v})
			return
		}
		if m.b > in.promised {
			in.promised = m.b
			if err := e.logAcceptorLocked(in); err != nil {
				e.mu.Unlock()
				return // dying incarnation: stay silent
			}
			reply := message{
				kind:   mPromise,
				k:      m.k,
				b:      m.b,
				hasAcc: in.hasAcc,
				accB:   in.accB,
				val:    in.accV,
			}
			e.mu.Unlock()
			e.send(from, reply)
			return
		}
		promised := in.promised
		e.mu.Unlock()
		e.send(from, message{kind: mNack, k: m.k, b: m.b, promised: promised})

	case mAccept:
		if in.hasDec {
			v := in.decided
			e.mu.Unlock()
			e.send(from, message{kind: mDecide, k: m.k, val: v})
			return
		}
		if m.b >= in.promised {
			in.promised = m.b
			in.accB = m.b
			in.accV = m.val
			in.hasAcc = true
			if err := e.logAcceptorLocked(in); err != nil {
				e.mu.Unlock()
				return
			}
			e.mu.Unlock()
			e.send(from, message{kind: mAccepted, k: m.k, b: m.b})
			return
		}
		promised := in.promised
		e.mu.Unlock()
		e.send(from, message{kind: mNack, k: m.k, b: m.b, promised: promised})

	case mPromise:
		if in.phase == 1 && m.b == in.curBallot {
			in.promises[from] = promiseInfo{hasAcc: m.hasAcc, accB: m.accB, accV: m.val}
			in.wake()
		}
		e.mu.Unlock()

	case mAccepted:
		if in.phase == 2 && m.b == in.curBallot {
			in.accepts[from] = true
			in.wake()
		}
		e.mu.Unlock()

	case mNack:
		if m.b == in.curBallot && m.promised > in.maxNack {
			in.maxNack = m.promised
			in.wake()
		}
		e.mu.Unlock()

	case mDecide:
		e.decideLocked(in, m.val)
		e.mu.Unlock()

	case mDecideReq:
		if in.hasDec {
			v := in.decided
			e.mu.Unlock()
			e.send(from, message{kind: mDecide, k: m.k, val: v})
			return
		}
		e.mu.Unlock()

	case mForgotten:
		// The peer GC'd this instance under a checkpoint. If its GC
		// floor is above this instance, the decision may be
		// unreachable through Consensus: release waiters so the
		// broadcast layer falls back to state transfer (§5.3).
		if m.promised > m.k {
			in.markForgotLocked()
		}
		e.mu.Unlock()

	default:
		e.mu.Unlock()
	}
}
