package consensus

import (
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/wire"
)

// The stable-sequencer lease is multi-Paxos's ranged promise, retrofitted
// onto the per-instance engine. An acceptor grants (fromK, b) only when it
// holds NO accepted or decided state, and no promise >= b, in any instance
// >= fromK. A majority of such grants proves — by quorum intersection —
// that nothing was, or ever can be, chosen at a ballot < b in the covered
// range: any choosing quorum would have to include a granter, and every
// granter refuses ballots < b there from then on. The holder may therefore
// skip phase 1 entirely and run accept-phase-only rounds at ballot b, with
// its own proposal as the value; ballot-uniqueness (PolicyLeader ballots
// embed the pid) guarantees nobody else proposes at b.
//
// Safety never involves clocks. The grant is logged durably before it is
// acknowledged (a crash cannot retract it), a replacement grant never
// narrows the covered range (narrowing would orphan the old attestation
// while its instances are still undecided), and a holder that loses the
// fast path — a competitor's higher ballot, an FD leadership change, TTL
// expiry — simply falls back to full consensus, where ordinary ballots
// arbitrate. The TTL only stops futile fast-path attempts.

// LeaseStats counts lease events on the holder side.
type LeaseStats struct {
	Acquired   uint64 // successful lease acquisitions
	FastRounds uint64 // instances decided via the accept-phase-only path
	Fallbacks  uint64 // fast-path attempts that failed back to consensus
	Held       bool   // a lease is currently held
}

// LeaseStats returns a snapshot of the holder-side lease counters.
func (e *Engine) LeaseStats() LeaseStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.leaseStats
	s.Held = e.leaseHeld
	return s
}

// RevokeLease drops the holder-side lease, forcing the next rounds back to
// full consensus until a new lease is acquired. Soak tests use it to model
// a suspicion-driven revocation at an arbitrary protocol step. Acceptor
// grants are untouched (they expire only by being outbid).
func (e *Engine) RevokeLease() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dropLeaseLocked()
}

// dropLeaseLocked invalidates the held lease. e.mu held.
func (e *Engine) dropLeaseLocked() {
	if e.leaseHeld {
		e.leaseHeld = false
		e.leaseStats.Fallbacks++
		e.fl.Event(obs.EvLeaseLost, e.cfg.Group, e.leaseFrom, int64(e.leaseB), 0, "fast path dropped")
	}
}

// grantBoundLocked returns the lease-grant lower bound on ballots for
// instance k: an acceptor that granted a lease covering k must refuse
// promises and accepts below the granted ballot (that refusal IS the
// attestation a grant quorum rests on). 0 when no grant covers k. e.mu
// held.
func (e *Engine) grantBoundLocked(k uint64) uint64 {
	if e.grantHeld && k >= e.grantFrom {
		return e.grantB
	}
	return 0
}

// leaseBallot decides whether instance in may take the fast path and, if
// so, at which ballot and with which value. A failed precondition that
// signals the lease is dead (a higher promise in the covered range, lost
// FD leadership, TTL expiry) drops it.
func (e *Engine) leaseBallot(in *instance) (b uint64, v []byte, ok bool) {
	if !e.cfg.Lease || e.cfg.Policy != PolicyLeader {
		return 0, nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.leaseHeld {
		return 0, nil, false
	}
	if e.fd != nil && e.fd.Leader() != e.cfg.PID {
		e.dropLeaseLocked() // suspected or outranked: stop claiming the lease
		return 0, nil, false
	}
	if time.Now().After(e.leaseUntil) {
		e.dropLeaseLocked()
		return 0, nil, false
	}
	if in.promised > e.leaseB {
		e.dropLeaseLocked() // a competitor is past our ballot in our range
		return 0, nil, false
	}
	if in.k < e.leaseFrom || !in.hasProp {
		return 0, nil, false
	}
	return e.leaseB, in.proposal, true
}

// leaseRoundDone records a fast-path outcome: success renews the TTL;
// failure (no quorum at the lease ballot) drops the lease so the driver
// falls back to full consensus.
func (e *Engine) leaseRoundDone(success bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if success {
		if e.leaseHeld {
			e.leaseUntil = time.Now().Add(e.cfg.LeaseTTL)
		}
		e.leaseStats.FastRounds++
		return
	}
	e.dropLeaseLocked()
}

// maybeAcquireLease starts an asynchronous lease acquisition covering every
// instance >= fromK, if the engine is configured for leases, believes
// itself the Ω leader, holds none, and is not in a post-failure cooldown.
// Called after a classically decided round — the moment the process has
// just demonstrated it is the stable sequencer.
func (e *Engine) maybeAcquireLease(fromK uint64) {
	if !e.cfg.Lease || e.cfg.Policy != PolicyLeader {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.leaseHeld || e.leaseAcquiring || e.stopped || e.ctx == nil {
		return
	}
	if e.fd != nil && e.fd.Leader() != e.cfg.PID {
		return
	}
	if time.Now().Before(e.leaseCooldown) {
		return
	}
	if e.leaseAttempt == 0 {
		e.leaseAttempt = 1
	}
	e.leaseAcquiring = true
	e.leaseReqB = e.ballotFor(e.leaseAttempt)
	e.leaseAcks = make(map[ids.ProcessID]bool)
	e.leaseNackB = 0
	e.leaseWake = make(chan struct{}, 1)
	e.wg.Add(1)
	go e.acquireLease(fromK, e.leaseReqB, e.leaseWake)
}

// acquireLease runs one acquisition attempt: broadcast the request, wait
// for a grant quorum, a conflicting nack, or the phase timeout. One attempt
// per triggering decision — under steady load the next decided round
// retries with the learned ballot.
func (e *Engine) acquireLease(fromK, b uint64, wake chan struct{}) {
	defer e.wg.Done()
	e.mu.Lock()
	ctx := e.ctx
	e.mu.Unlock()
	e.send(ids.Nobody, message{kind: mLeaseReq, k: fromK, b: b})
	timer := time.NewTimer(e.phaseTimeout())
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			e.mu.Lock()
			e.leaseAcquiring = false
			e.mu.Unlock()
			return
		case <-timer.C:
			e.mu.Lock()
			e.leaseAttempt++
			e.leaseCooldown = time.Now().Add(e.backoff(1))
			e.leaseAcquiring = false
			e.mu.Unlock()
			return
		case <-wake:
		}
		e.mu.Lock()
		if e.leaseNackB >= b {
			// Outbid: learn the conflicting ballot and cool down so the
			// competitor (possibly a recovering ex-holder's grant) is not
			// hammered with doomed requests.
			e.leaseAttempt = e.attemptAbove(e.leaseNackB)
			e.leaseCooldown = time.Now().Add(e.backoff(1))
			e.leaseAcquiring = false
			e.mu.Unlock()
			return
		}
		if len(e.leaseAcks) >= Quorum(e.cfg.N) {
			e.leaseHeld = true
			e.leaseB = b
			e.leaseFrom = fromK
			e.leaseUntil = time.Now().Add(e.cfg.LeaseTTL)
			e.leaseAttempt++
			e.leaseStats.Acquired++
			e.fl.Event(obs.EvLeaseAcquire, e.cfg.Group, fromK, int64(b), 0, "")
			e.leaseAcquiring = false
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
	}
}

// pokeLeaseLocked wakes a pending acquisition. e.mu held.
func (e *Engine) pokeLeaseLocked() {
	if e.leaseWake != nil {
		select {
		case e.leaseWake <- struct{}{}:
		default:
		}
	}
}

// onLeaseMsg handles the three lease kinds. Called from OnMessage with
// e.mu held; it unlocks.
func (e *Engine) onLeaseMsg(from ids.ProcessID, m message) {
	switch m.kind {
	case mLeaseReq:
		e.onLeaseReqLocked(from, m)
	case mLeaseAck:
		if e.leaseAcquiring && m.b == e.leaseReqB {
			e.leaseAcks[from] = true
			e.pokeLeaseLocked()
		}
		e.mu.Unlock()
	case mLeaseNack:
		if e.leaseAcquiring && m.b == e.leaseReqB && m.promised > e.leaseNackB {
			e.leaseNackB = m.promised
			e.pokeLeaseLocked()
		}
		e.mu.Unlock()
	}
}

// onLeaseReqLocked is the acceptor side: grant (fromK=m.k, b=m.b) iff the
// log can attest that nothing at a ballot < b was or can be chosen in any
// instance >= fromK at this acceptor. e.mu held; unlocks.
func (e *Engine) onLeaseReqLocked(from ids.ProcessID, m message) {
	conflict := uint64(0)
	refuse := false
	if e.grantHeld && m.b <= e.grantB {
		refuse = true
		conflict = e.grantB
	}
	if m.k < e.floor {
		// Instances in [fromK, floor) were decided and discarded; this
		// acceptor cannot attest an empty range there.
		refuse = true
	}
	for k, in := range e.insts {
		if k < m.k {
			continue
		}
		if in.hasAcc || in.hasDec || in.promised >= m.b {
			refuse = true
			if in.promised > conflict {
				conflict = in.promised
			}
			if in.accB > conflict {
				conflict = in.accB
			}
		}
	}
	if refuse {
		e.mu.Unlock()
		e.send(from, message{kind: mLeaseNack, k: m.k, b: m.b, promised: conflict})
		return
	}
	// Grant. Never narrow the covered range: replacing (oldB, oldFrom)
	// with (newB, newFrom > oldFrom) would stop refusing sub-oldB ballots
	// in [oldFrom, newFrom) while those instances may still be undecided —
	// the old holder's attestation would silently evaporate. Widening (or
	// keeping) the range is always safe: it only delays proposers, who
	// recover via nack-learned ballots.
	newFrom := m.k
	if e.grantHeld && e.grantFrom < newFrom {
		newFrom = e.grantFrom
	}
	e.grantHeld = true
	e.grantB = m.b
	e.grantFrom = newFrom
	w := wire.NewWriter(16)
	w.U64(e.grantB)
	w.U64(e.grantFrom)
	// Durable before the ack (replyWhenDurable): a granted-then-crashed
	// acceptor must come back still refusing sub-grant ballots.
	c := e.ast.PutAsync(keyLease, w.Bytes())
	e.mu.Unlock()
	e.replyWhenDurable(c, from, message{kind: mLeaseAck, k: m.k, b: m.b})
}
