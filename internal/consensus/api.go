// Package consensus implements the paper's Consensus building block for the
// asynchronous crash-recovery model (§3.2–§3.5): a multi-instance engine
// with idempotent propose/decided primitives satisfying
//
//   - Termination: every good process eventually decides,
//   - Uniform Validity: the decision was proposed by some process,
//   - Uniform Agreement: no two processes (good or bad) decide differently,
//
// provided a majority of processes are good (the assumption made by the
// crash-recovery consensus protocols the paper cites [1, 11, 14]).
//
// The engine follows the logged ballot-voting (synod) discipline: acceptor
// state (promise, accepted pair) and decisions are forced to stable storage
// before being announced, so a crash and recovery can never retract a
// promise or un-decide an instance. "A process proposes by logging its
// initial value on stable storage" (§3.2) — Propose's first action is that
// log write, which is exactly the log operation the broadcast layer's
// minimal-logging claim (§4.3) charges to Consensus.
//
// Two coordinator policies demonstrate that the broadcast transformation
// treats Consensus as a black box (paper claim C2):
//
//   - PolicyLeader drives instances from the failure detector's Ω leader
//     hint (the structure of Aguilera–Chen–Toueg [1]);
//   - PolicyRotating rotates the coordinator round-robin with
//     suspicion-driven hand-off (the structure of Hurfin–Mostefaoui–Raynal
//     [11]).
package consensus

import (
	"context"
	"errors"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
)

// Policy selects how instances pick their coordinator.
type Policy int

// Coordinator policies. See the package comment.
const (
	PolicyLeader Policy = iota + 1
	PolicyRotating
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyLeader:
		return "leader"
	case PolicyRotating:
		return "rotating"
	default:
		return "unknown"
	}
}

// ErrStopped is returned when the engine's incarnation context ends while an
// operation is in flight.
var ErrStopped = errors.New("consensus: engine stopped")

// ErrDiscarded is returned for instances below the garbage-collection floor
// set by DiscardBelow.
var ErrDiscarded = errors.New("consensus: instance discarded")

// API is the interface the atomic broadcast layer programs against
// (Fig. 1's propose/decided box). All methods are idempotent: "upon
// recovery, a process may (re-)invoke these primitives for a Consensus
// instance that has already started or even terminated" (§4.1).
type API interface {
	// Propose submits this process's initial value for instance k. Its
	// first action is logging the value; re-proposing a different value
	// for the same instance keeps the original (property P4).
	Propose(k uint64, v []byte) error
	// WaitDecided blocks until instance k decides and returns the
	// decision. Repeated calls return the same value (property P5).
	WaitDecided(ctx context.Context, k uint64) ([]byte, error)
	// DecidedLocal returns the locally known decision of k, if any,
	// without blocking or touching the network.
	DecidedLocal(k uint64) ([]byte, bool)
	// Proposal returns the logged initial value for k, if any. The
	// broadcast replay procedure iterates instances "while
	// Proposed_p[k_p] ≠ ⊥" (Fig. 2).
	Proposal(k uint64) ([]byte, bool)
	// DiscardBelow garbage-collects all state of instances < k
	// ("Proposed_p[i], i < k_p can be discarded from the log", Fig. 4
	// line (c)). Only safe once the caller has a checkpoint covering
	// those instances.
	DiscardBelow(k uint64) error
}

// Suspector is the failure-detector view the engine needs. It matches
// *fd.Detector.
type Suspector interface {
	Suspects(p ids.ProcessID) bool
	Leader() ids.ProcessID
}

// Config parameterizes an Engine.
type Config struct {
	PID ids.ProcessID
	N   int
	// Group tags the engine's metrics, trace stamps and flight-recorder
	// events with its ordering group (observability only; zero is fine
	// for unsharded processes).
	Group ids.GroupID
	// Obs is the process's observability plane. Nil disables consensus
	// instrumentation at zero cost.
	Obs *obs.Plane
	// Policy selects the coordinator policy (default PolicyLeader).
	Policy Policy
	// RetryMin/RetryMax bound the driver's phase timeout and backoff
	// (defaults 8ms / 120ms). Small values suit the in-memory network.
	RetryMin time.Duration
	RetryMax time.Duration
	// Seed randomizes backoff jitter.
	Seed uint64
	// Lease enables the stable-sequencer lease fast path (PolicyLeader
	// only; ignored under PolicyRotating, whose ballots are not owned by a
	// single process). After deciding a round classically, the Ω-leader
	// asks every acceptor for a ranged promise covering all instances
	// >= fromK at one ballot; with a majority granted it skips phase 1 and
	// runs accept-phase-only rounds at that ballot until a competitor's
	// higher ballot, an FD leadership change, or LeaseTTL expiry drops the
	// lease. Safety rests on ballots and quorum intersection alone — never
	// on clocks: a grant is durably logged before it is acknowledged, and
	// a granting acceptor nacks every other proposer below the lease
	// ballot, so the holder's value is the only one choosable at or below
	// it in the covered range.
	Lease bool
	// LeaseTTL bounds how long a holder keeps trying the fast path without
	// a successful round (default 500ms). Purely a liveness knob — expiry
	// stops futile fast-path attempts; it revokes nothing at acceptors.
	LeaseTTL time.Duration
}

func (c *Config) fill() {
	if c.Policy == 0 {
		c.Policy = PolicyLeader
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 8 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 120 * time.Millisecond
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 500 * time.Millisecond
	}
}

// Quorum returns the majority size for n processes.
func Quorum(n int) int { return n/2 + 1 }
