package consensus

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Storage key layout. Instances use fixed-width hex so List order is
// numeric order.
//
//	cons/p/<k>  proposal cell   — the paper's required "propose" log (§3.2)
//	cons/a/<k>  acceptor cell   — promise + accepted pair
//	cons/d/<k>  decision cell   — learned decision
const keyPrefix = "cons/"

func propKey(k uint64) string { return fmt.Sprintf("cons/p/%016x", k) }
func accKey(k uint64) string  { return fmt.Sprintf("cons/a/%016x", k) }
func decKey(k uint64) string  { return fmt.Sprintf("cons/d/%016x", k) }

// parseKey inverts the key layout; ok is false for foreign keys.
func parseKey(key string) (kind byte, k uint64, ok bool) {
	rest, found := strings.CutPrefix(key, keyPrefix)
	if !found || len(rest) < 3 || rest[1] != '/' {
		return 0, 0, false
	}
	v, err := strconv.ParseUint(rest[2:], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return rest[0], v, true
}

// instance holds the per-instance state. Acceptor fields mirror the logged
// acceptor cell; everything else is volatile.
type instance struct {
	k uint64

	// proposer state
	proposal []byte
	hasProp  bool

	// acceptor state (logged before every reply)
	promised uint64
	accB     uint64
	accV     []byte
	hasAcc   bool

	// learner state
	decided []byte
	hasDec  bool
	done    chan struct{} // closed when decided
	// forgotten is closed when a peer reports it garbage-collected this
	// instance (mForgotten): the decision may be unrecoverable through
	// Consensus, so waiters fall back to the broadcast layer's state
	// transfer.
	forgotten chan struct{}
	wasForgot bool

	// driver state (volatile)
	driving   bool
	gone      bool // GC'd under the floor; driver must exit
	curBallot uint64
	phase     int // 0 idle, 1 collecting promises, 2 collecting accepts
	promises  map[ids.ProcessID]promiseInfo
	accepts   map[ids.ProcessID]bool
	maxNack   uint64
	progress  chan struct{} // capacity 1; wakes the driver
}

type promiseInfo struct {
	hasAcc bool
	accB   uint64
	accV   []byte
}

func newInstance(k uint64) *instance {
	return &instance{
		k:         k,
		done:      make(chan struct{}),
		forgotten: make(chan struct{}),
		promises:  make(map[ids.ProcessID]promiseInfo),
		accepts:   make(map[ids.ProcessID]bool),
		progress:  make(chan struct{}, 1),
	}
}

// markForgotLocked records a peer's report that it GC'd this instance.
// e.mu held.
func (in *instance) markForgotLocked() {
	if !in.wasForgot && !in.hasDec {
		in.wasForgot = true
		close(in.forgotten)
		in.wake()
	}
}

func (in *instance) wake() {
	select {
	case in.progress <- struct{}{}:
	default:
	}
}

// Engine is the multi-instance consensus engine for one process
// incarnation. Create it with New (which replays the stable log), register
// OnMessage with the router, then Start.
type Engine struct {
	cfg Config
	st  storage.Stable
	net router.Net
	fd  Suspector // may be nil (tests); then every process may drive

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	insts   map[uint64]*instance
	floor   uint64 // instances below this are discarded
	ctx     context.Context
	stopped bool

	wg sync.WaitGroup
}

var _ API = (*Engine)(nil)

// New builds an engine and restores all logged instance state — this is the
// consensus side of crash recovery. net must be bound to the consensus
// channel.
func New(cfg Config, st storage.Stable, net router.Net, det Suspector) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:   cfg,
		st:    st,
		net:   net,
		fd:    det,
		rng:   rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa5a5a5a5deadbeef)),
		insts: make(map[uint64]*instance),
	}
	if err := e.restore(); err != nil {
		return nil, err
	}
	return e, nil
}

// restore reloads every logged instance.
func (e *Engine) restore() error {
	keys, err := e.st.List(keyPrefix)
	if err != nil {
		return fmt.Errorf("consensus: list log: %w", err)
	}
	for _, key := range keys {
		kind, k, ok := parseKey(key)
		if !ok {
			continue
		}
		val, found, err := e.st.Get(key)
		if err != nil {
			return fmt.Errorf("consensus: restore %s: %w", key, err)
		}
		if !found {
			continue
		}
		in := e.getLocked(k)
		switch kind {
		case 'p':
			in.proposal = val
			in.hasProp = true
		case 'a':
			r := wire.NewReader(val)
			in.promised = r.U64()
			in.hasAcc = r.Bool()
			in.accB = r.U64()
			in.accV = r.BytesCopy()
			if err := r.Done(); err != nil {
				return fmt.Errorf("consensus: corrupt acceptor cell %s: %w", key, err)
			}
		case 'd':
			if !in.hasDec {
				in.decided = val
				in.hasDec = true
				close(in.done)
			}
		}
	}
	return nil
}

// Start arms the engine with its incarnation context. Drivers started by
// Propose/WaitDecided stop when ctx is cancelled; Stop waits for them.
func (e *Engine) Start(ctx context.Context) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ctx = ctx
	// Resume drivers for instances that were mid-flight when the previous
	// incarnation crashed: any logged proposal without a logged decision
	// must be re-proposed (idempotently) so the instance terminates.
	for _, in := range e.insts {
		if in.hasProp && !in.hasDec {
			e.startDriverLocked(in)
		}
	}
}

// Stop waits for all drivers to exit (cancel the Start context first).
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
	e.wg.Wait()
}

// getLocked returns the instance for k, creating it if needed. e.mu held.
func (e *Engine) getLocked(k uint64) *instance {
	in, ok := e.insts[k]
	if !ok {
		in = newInstance(k)
		e.insts[k] = in
	}
	return in
}

// Propose implements API.
func (e *Engine) Propose(k uint64, v []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if k < e.floor {
		return fmt.Errorf("%w: instance %d below floor %d", ErrDiscarded, k, e.floor)
	}
	in := e.getLocked(k)
	if in.hasDec {
		return nil
	}
	if in.hasProp {
		// P4: despite crashes and re-executions, the value proposed to
		// instance k never changes. A different v is a caller bug in
		// the basic protocol; keep the original.
		if !bytes.Equal(in.proposal, v) && v != nil {
			// Keep the logged value; nothing to do.
			_ = v
		}
		e.startDriverLocked(in)
		return nil
	}
	// "A process proposes by logging its initial value on stable
	// storage; this is the only logging required by our basic version of
	// the protocol" (§3.2). The write happens before anything else.
	cp := make([]byte, len(v))
	copy(cp, v)
	if err := e.st.Put(propKey(k), cp); err != nil {
		return fmt.Errorf("consensus: log proposal %d: %w", k, err)
	}
	in.proposal = cp
	in.hasProp = true
	e.startDriverLocked(in)
	return nil
}

// WaitDecided implements API.
func (e *Engine) WaitDecided(ctx context.Context, k uint64) ([]byte, error) {
	e.mu.Lock()
	if k < e.floor {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: instance %d", ErrDiscarded, k)
	}
	in := e.getLocked(k)
	if in.hasDec {
		v := in.decided
		e.mu.Unlock()
		return v, nil
	}
	// Ensure someone is working on the instance, at least as a learner
	// asking for the decision.
	e.startDriverLocked(in)
	done := in.done
	forgot := in.forgotten
	e.mu.Unlock()

	select {
	case <-done:
		e.mu.Lock()
		v := in.decided
		e.mu.Unlock()
		return v, nil
	case <-forgot:
		// A peer garbage-collected this instance under a checkpoint:
		// the decision may no longer be reachable through Consensus.
		// The caller must catch up via state transfer instead (§5.3).
		e.mu.Lock()
		if in.hasDec {
			v := in.decided
			e.mu.Unlock()
			return v, nil
		}
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: instance %d reported forgotten by a peer", ErrDiscarded, k)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// DecidedLocal implements API.
func (e *Engine) DecidedLocal(k uint64) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.insts[k]
	if !ok || !in.hasDec {
		return nil, false
	}
	return in.decided, true
}

// Proposal implements API.
func (e *Engine) Proposal(k uint64) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.insts[k]
	if !ok || !in.hasProp {
		return nil, false
	}
	return in.proposal, true
}

// DiscardBelow implements API.
func (e *Engine) DiscardBelow(k uint64) error {
	e.mu.Lock()
	if k <= e.floor {
		e.mu.Unlock()
		return nil
	}
	e.floor = k
	var victims []uint64
	for kk, in := range e.insts {
		if kk < k {
			in.gone = true
			in.wake()
			victims = append(victims, kk)
			delete(e.insts, kk)
		}
	}
	e.mu.Unlock()

	for _, kk := range victims {
		for _, key := range []string{propKey(kk), accKey(kk), decKey(kk)} {
			if err := e.st.Delete(key); err != nil {
				return fmt.Errorf("consensus: discard %d: %w", kk, err)
			}
		}
	}
	return nil
}

// Floor returns the current GC floor.
func (e *Engine) Floor() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.floor
}

// MaxKnown returns the highest instance with any local state, and whether
// one exists.
func (e *Engine) MaxKnown() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var maxK uint64
	found := false
	for k := range e.insts {
		if !found || k > maxK {
			maxK = k
			found = true
		}
	}
	return maxK, found
}

// logAcceptorLocked forces the acceptor cell to stable storage. e.mu held.
func (e *Engine) logAcceptorLocked(in *instance) error {
	w := wire.NewWriter(24 + len(in.accV))
	w.U64(in.promised)
	w.Bool(in.hasAcc)
	w.U64(in.accB)
	w.Bytes32(in.accV)
	return e.st.Put(accKey(in.k), w.Bytes())
}

// decideLocked records a decision: log first, then announce. e.mu held.
func (e *Engine) decideLocked(in *instance, v []byte) {
	if in.hasDec {
		return
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	if err := e.st.Put(decKey(in.k), cp); err != nil {
		// Stable storage failed (injected crash): the incarnation is
		// dying; do not expose an unlogged decision.
		return
	}
	in.decided = cp
	in.hasDec = true
	close(in.done)
	in.wake()
}
