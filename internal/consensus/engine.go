package consensus

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Storage key layout. Instances use fixed-width hex so List order is
// numeric order.
//
//	cons/p/<k>  proposal cell   — the paper's required "propose" log (§3.2)
//	cons/a/<k>  acceptor cell   — promise + accepted pair
//	cons/d/<k>  decision cell   — learned decision
//	cons/lease  lease-grant cell — the acceptor's ranged promise (ballot, fromK)
const keyPrefix = "cons/"

// keyLease holds the acceptor's lease grant: a durable ranged promise that
// must survive crashes exactly like per-instance promises (parseKey skips
// it, so the per-instance restore loop ignores it; restore loads it
// explicitly).
const keyLease = "cons/lease"

func propKey(k uint64) string { return fmt.Sprintf("cons/p/%016x", k) }
func accKey(k uint64) string  { return fmt.Sprintf("cons/a/%016x", k) }
func decKey(k uint64) string  { return fmt.Sprintf("cons/d/%016x", k) }

// parseKey inverts the key layout; ok is false for foreign keys.
func parseKey(key string) (kind byte, k uint64, ok bool) {
	rest, found := strings.CutPrefix(key, keyPrefix)
	if !found || len(rest) < 3 || rest[1] != '/' {
		return 0, 0, false
	}
	v, err := strconv.ParseUint(rest[2:], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return rest[0], v, true
}

// instance holds the per-instance state. Acceptor fields mirror the logged
// acceptor cell; everything else is volatile.
type instance struct {
	k uint64

	// proposer state. propPending marks an asynchronous proposal write in
	// flight: the value is issued to stable storage but not yet durable,
	// so drivers may only act as learners until hasProp flips.
	proposal    []byte
	hasProp     bool
	propPending bool

	// acceptor state (logged before every reply)
	promised uint64
	accB     uint64
	accV     []byte
	hasAcc   bool

	// learner state. decPending marks the decision cell's asynchronous
	// write in flight: the chosen value may be announced to peers (its
	// safety rests on the quorum's durable acceptor cells), but hasDec —
	// and with it WaitDecided and the commit path — only flips once the
	// cell is durable.
	decided    []byte
	hasDec     bool
	decPending bool
	done       chan struct{} // closed when decided
	// forgotten is closed when a peer reports it garbage-collected this
	// instance (mForgotten): the decision may be unrecoverable through
	// Consensus, so waiters fall back to the broadcast layer's state
	// transfer.
	forgotten chan struct{}
	wasForgot bool

	// observability stamps (volatile): when the local proposal was
	// issued, and when the accept quorum was observed.
	proposedAt int64
	quorumAt   int64

	// driver state (volatile)
	driving   bool
	gone      bool // GC'd under the floor; driver must exit
	curBallot uint64
	phase     int // 0 idle, 1 collecting promises, 2 collecting accepts
	promises  map[ids.ProcessID]promiseInfo
	accepts   map[ids.ProcessID]bool
	maxNack   uint64
	progress  chan struct{} // capacity 1; wakes the driver
}

type promiseInfo struct {
	hasAcc bool
	accB   uint64
	accV   []byte
}

func newInstance(k uint64) *instance {
	return &instance{
		k:         k,
		done:      make(chan struct{}),
		forgotten: make(chan struct{}),
		promises:  make(map[ids.ProcessID]promiseInfo),
		accepts:   make(map[ids.ProcessID]bool),
		progress:  make(chan struct{}, 1),
	}
}

// markForgotLocked records a peer's report that it GC'd this instance.
// e.mu held.
func (in *instance) markForgotLocked() {
	if !in.wasForgot && !in.hasDec {
		in.wasForgot = true
		close(in.forgotten)
		in.wake()
	}
}

func (in *instance) wake() {
	select {
	case in.progress <- struct{}{}:
	default:
	}
}

// Engine is the multi-instance consensus engine for one process
// incarnation. Create it with New (which replays the stable log), register
// OnMessage with the router, then Start.
type Engine struct {
	cfg Config
	st  storage.Stable
	// ast is the asynchronous view of st: the ordering hot path issues
	// its persists through it and acts on each completion, so on a
	// group-commit engine all concurrent rounds share one fsync.
	// Synchronous engines resolve completions eagerly (storage.Async).
	ast storage.AsyncStable
	net router.Net
	fd  Suspector // may be nil (tests); then every process may drive

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	insts   map[uint64]*instance
	floor   uint64 // instances below this are discarded
	ctx     context.Context
	stopped bool

	// Acceptor-side lease grant (durable, cell keyLease): a ranged promise
	// to refuse ballots < grantB in every instance >= grantFrom. A newer
	// grant never narrows the range (grantFrom only moves down), so the
	// attestation behind an older grant is never silently dropped.
	grantHeld bool
	grantB    uint64
	grantFrom uint64

	// Holder-side lease (volatile: a recovered holder re-acquires).
	leaseHeld      bool
	leaseB         uint64
	leaseFrom      uint64
	leaseUntil     time.Time
	leaseAcquiring bool
	leaseAttempt   uint64
	leaseCooldown  time.Time
	leaseReqB      uint64
	leaseAcks      map[ids.ProcessID]bool
	leaseNackB     uint64
	leaseWake      chan struct{}
	leaseStats     LeaseStats

	met consMetrics
	tr  *obs.Tracer
	fl  *obs.Recorder

	wg sync.WaitGroup
}

var _ API = (*Engine)(nil)

// New builds an engine and restores all logged instance state — this is the
// consensus side of crash recovery. net must be bound to the consensus
// channel.
func New(cfg Config, st storage.Stable, net router.Net, det Suspector) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:   cfg,
		st:    st,
		ast:   storage.Async(st),
		net:   net,
		fd:    det,
		rng:   rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa5a5a5a5deadbeef)),
		insts: make(map[uint64]*instance),
		met:   newConsMetrics(cfg.Obs.Reg(), cfg.Group),
		tr:    cfg.Obs.Trace(),
		fl:    cfg.Obs.Flight(),
	}
	if err := e.restore(); err != nil {
		return nil, err
	}
	if cfg.Lease {
		e.registerLeaseFuncs(cfg.Obs.Reg())
	}
	return e, nil
}

// restore reloads every logged instance.
func (e *Engine) restore() error {
	keys, err := e.st.List(keyPrefix)
	if err != nil {
		return fmt.Errorf("consensus: list log: %w", err)
	}
	for _, key := range keys {
		kind, k, ok := parseKey(key)
		if !ok {
			continue
		}
		val, found, err := e.st.Get(key)
		if err != nil {
			return fmt.Errorf("consensus: restore %s: %w", key, err)
		}
		if !found {
			continue
		}
		in := e.getLocked(k)
		switch kind {
		case 'p':
			in.proposal = val
			in.hasProp = true
		case 'a':
			r := wire.NewReader(val)
			in.promised = r.U64()
			in.hasAcc = r.Bool()
			in.accB = r.U64()
			in.accV = r.BytesCopy()
			if err := r.Done(); err != nil {
				return fmt.Errorf("consensus: corrupt acceptor cell %s: %w", key, err)
			}
		case 'd':
			if !in.hasDec {
				in.decided = val
				in.hasDec = true
				close(in.done)
			}
		}
	}
	// The lease-grant cell is a ranged promise: forgetting it across a
	// crash would let the acceptor promise/accept below a granted ballot.
	raw, found, err := e.st.Get(keyLease)
	if err != nil {
		return fmt.Errorf("consensus: restore lease grant: %w", err)
	}
	if found {
		r := wire.NewReader(raw)
		e.grantB = r.U64()
		e.grantFrom = r.U64()
		if err := r.Done(); err != nil {
			return fmt.Errorf("consensus: corrupt lease grant cell: %w", err)
		}
		e.grantHeld = true
	}
	return nil
}

// Start arms the engine with its incarnation context. Drivers started by
// Propose/WaitDecided stop when ctx is cancelled; Stop waits for them.
func (e *Engine) Start(ctx context.Context) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ctx = ctx
	// Resume drivers for instances that were mid-flight when the previous
	// incarnation crashed: any logged proposal without a logged decision
	// must be re-proposed (idempotently) so the instance terminates.
	for _, in := range e.insts {
		if in.hasProp && !in.hasDec {
			e.startDriverLocked(in)
		}
	}
}

// Stop waits for all drivers to exit (cancel the Start context first).
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
	e.wg.Wait()
}

// getLocked returns the instance for k, creating it if needed. e.mu held.
func (e *Engine) getLocked(k uint64) *instance {
	in, ok := e.insts[k]
	if !ok {
		in = newInstance(k)
		e.insts[k] = in
	}
	return in
}

// Propose implements API.
func (e *Engine) Propose(k uint64, v []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if k < e.floor {
		return fmt.Errorf("%w: instance %d below floor %d", ErrDiscarded, k, e.floor)
	}
	in := e.getLocked(k)
	if in.hasDec {
		return nil
	}
	if in.hasProp || in.propPending {
		// P4: despite crashes and re-executions, the value proposed to
		// instance k never changes. A different v is a caller bug in
		// the basic protocol; keep the original.
		if !bytes.Equal(in.proposal, v) && v != nil {
			// Keep the logged value; nothing to do.
			_ = v
		}
		e.startDriverLocked(in)
		return nil
	}
	// "A process proposes by logging its initial value on stable
	// storage; this is the only logging required by our basic version of
	// the protocol" (§3.2). The write is issued before anything else;
	// coordination starts only once it is durable. On a group-commit
	// engine the proposals of all pipelined rounds coalesce into one
	// fsync; synchronous engines resolve inline, preserving the original
	// propose-then-return contract (including surfacing the error).
	cp := make([]byte, len(v))
	copy(cp, v)
	in.propPending = true
	in.proposedAt = time.Now().UnixNano()
	c := e.ast.PutAsync(propKey(k), cp)
	if err, done := c.Poll(); done {
		in.propPending = false
		if err != nil {
			return fmt.Errorf("consensus: log proposal %d: %w", k, err)
		}
		in.proposal = cp
		in.hasProp = true
		e.startDriverLocked(in)
		return nil
	}
	c.OnDone(func(err error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		in.propPending = false
		if err != nil {
			return // dying incarnation: never act on the unlogged proposal
		}
		in.proposal = cp
		in.hasProp = true
		e.startDriverLocked(in)
		in.wake()
	})
	// Until the proposal is durable the instance may still be pushed as a
	// learner (drive() coordinates only when hasProp is set).
	e.startDriverLocked(in)
	return nil
}

// WaitDecided implements API.
func (e *Engine) WaitDecided(ctx context.Context, k uint64) ([]byte, error) {
	e.mu.Lock()
	if k < e.floor {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: instance %d", ErrDiscarded, k)
	}
	in := e.getLocked(k)
	if in.hasDec {
		v := in.decided
		e.mu.Unlock()
		return v, nil
	}
	// Ensure someone is working on the instance, at least as a learner
	// asking for the decision.
	e.startDriverLocked(in)
	done := in.done
	forgot := in.forgotten
	e.mu.Unlock()

	select {
	case <-done:
		e.mu.Lock()
		v := in.decided
		e.mu.Unlock()
		return v, nil
	case <-forgot:
		// A peer garbage-collected this instance under a checkpoint:
		// the decision may no longer be reachable through Consensus.
		// The caller must catch up via state transfer instead (§5.3).
		e.mu.Lock()
		if in.hasDec {
			v := in.decided
			e.mu.Unlock()
			return v, nil
		}
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: instance %d reported forgotten by a peer", ErrDiscarded, k)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// DecidedLocal implements API.
func (e *Engine) DecidedLocal(k uint64) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.insts[k]
	if !ok || !in.hasDec {
		return nil, false
	}
	return in.decided, true
}

// Proposal implements API.
func (e *Engine) Proposal(k uint64) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.insts[k]
	if !ok || !in.hasProp {
		return nil, false
	}
	return in.proposal, true
}

// DiscardBelow implements API.
func (e *Engine) DiscardBelow(k uint64) error {
	e.mu.Lock()
	if k <= e.floor {
		e.mu.Unlock()
		return nil
	}
	e.floor = k
	var victims []uint64
	for kk, in := range e.insts {
		if kk < k {
			in.gone = true
			in.wake()
			victims = append(victims, kk)
			delete(e.insts, kk)
		}
	}
	e.mu.Unlock()

	// Issue all the deletes asynchronously, then wait: on a group-commit
	// engine the whole discard shares a handful of fsyncs instead of
	// paying one per cell (3 cells x potentially hundreds of instances
	// per checkpoint).
	type victimDel struct {
		k uint64
		c *storage.Completion
	}
	dels := make([]victimDel, 0, 3*len(victims))
	for _, kk := range victims {
		for _, key := range []string{propKey(kk), accKey(kk), decKey(kk)} {
			dels = append(dels, victimDel{kk, e.ast.DeleteAsync(key)})
		}
	}
	for _, d := range dels {
		if err := d.c.Wait(); err != nil {
			return fmt.Errorf("consensus: discard %d: %w", d.k, err)
		}
	}
	return nil
}

// Floor returns the current GC floor.
func (e *Engine) Floor() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.floor
}

// MaxKnown returns the highest instance with any local state, and whether
// one exists.
func (e *Engine) MaxKnown() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var maxK uint64
	found := false
	for k := range e.insts {
		if !found || k > maxK {
			maxK = k
			found = true
		}
	}
	return maxK, found
}

// logAcceptorLocked issues the acceptor cell to stable storage and returns
// the completion. The caller must not send the reply the cell protects
// before the completion resolves (replyWhenDurable). Because the write is
// enqueued under e.mu, concurrent acceptor updates of the same instance
// reach the log in volatile-state order. e.mu held.
func (e *Engine) logAcceptorLocked(in *instance) *storage.Completion {
	w := wire.NewWriter(24 + len(in.accV))
	w.U64(in.promised)
	w.Bool(in.hasAcc)
	w.U64(in.accB)
	w.Bytes32(in.accV)
	return e.ast.PutAsync(accKey(in.k), w.Bytes())
}

// replyWhenDurable transmits reply to one peer once the log write covering
// it is durable — the §2.1 discipline: volatile state may move early, but
// the process only *acts* (here: promises/accepts on the wire) after the
// completion fires. A failed write means a dying incarnation: stay silent,
// exactly like a crash between the log call and the send.
func (e *Engine) replyWhenDurable(c *storage.Completion, to ids.ProcessID, reply message) {
	if err, done := c.Poll(); done {
		if err == nil {
			e.send(to, reply)
		}
		return
	}
	c.OnDone(func(err error) {
		if err == nil {
			e.send(to, reply)
		}
	})
}

// decideLocked records a decision: the cell write is issued immediately,
// but hasDec (which gates WaitDecided and the broadcast layer's commit)
// only flips when it is durable. e.mu held.
func (e *Engine) decideLocked(in *instance, v []byte) {
	if in.hasDec || in.decPending {
		return
	}
	in.quorumAt = time.Now().UnixNano()
	if in.proposedAt != 0 {
		e.met.quorumNS.Observe(in.quorumAt - in.proposedAt)
	}
	e.tr.MarkRound(e.cfg.Group, in.k, obs.StDecide)
	cp := make([]byte, len(v))
	copy(cp, v)
	in.decPending = true
	c := e.ast.PutAsync(decKey(in.k), cp)
	if err, done := c.Poll(); done {
		in.decPending = false
		if err != nil {
			// Stable storage failed (injected crash): the incarnation
			// is dying; do not expose an unlogged decision.
			return
		}
		e.installDecisionLocked(in, cp)
		return
	}
	c.OnDone(func(err error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		in.decPending = false
		if err != nil {
			return
		}
		e.installDecisionLocked(in, cp)
	})
}

// installDecisionLocked exposes a durable decision. e.mu held.
func (e *Engine) installDecisionLocked(in *instance, cp []byte) {
	if in.hasDec {
		return
	}
	if in.quorumAt != 0 {
		e.met.decideFsyncNS.Observe(time.Now().UnixNano() - in.quorumAt)
	}
	e.tr.MarkRound(e.cfg.Group, in.k, obs.StDecideDurable)
	in.decided = cp
	in.hasDec = true
	close(in.done)
	in.wake()
}
