package ids

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestProcessIDString(t *testing.T) {
	if got := ProcessID(3).String(); got != "p3" {
		t.Fatalf("got %q", got)
	}
	if got := Nobody.String(); got != "p?" {
		t.Fatalf("got %q", got)
	}
}

func TestMsgIDLessOrdersBySenderIncarnationSeq(t *testing.T) {
	cases := []struct {
		a, b MsgID
		less bool
	}{
		{MsgID{0, 1, 1}, MsgID{1, 1, 1}, true},
		{MsgID{1, 1, 1}, MsgID{0, 1, 1}, false},
		{MsgID{0, 1, 1}, MsgID{0, 2, 1}, true},
		{MsgID{0, 1, 2}, MsgID{0, 1, 10}, true},
		{MsgID{0, 1, 1}, MsgID{0, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v < %v = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

// TestLessIsStrictTotalOrder property-checks irreflexivity, asymmetry and
// totality of the deterministic rule's order.
func TestLessIsStrictTotalOrder(t *testing.T) {
	irreflexive := func(s int32, inc uint32, seq uint64) bool {
		m := MsgID{ProcessID(s), inc, seq}
		return !m.Less(m)
	}
	if err := quick.Check(irreflexive, nil); err != nil {
		t.Error(err)
	}
	asymmetric := func(s1, s2 int32, i1, i2 uint32, q1, q2 uint64) bool {
		a := MsgID{ProcessID(s1), i1, q1}
		b := MsgID{ProcessID(s2), i2, q2}
		if a.Less(b) && b.Less(a) {
			return false
		}
		// Totality: exactly one of <, >, == holds.
		eq := a == b
		return eq != (a.Less(b) || b.Less(a))
	}
	if err := quick.Check(asymmetric, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	f := func(s1, s2 int32, i1, i2 uint32, q1, q2 uint64) bool {
		a := MsgID{ProcessID(s1), i1, q1}
		b := MsgID{ProcessID(s2), i2, q2}
		switch a.Compare(b) {
		case -1:
			return a.Less(b)
		case 1:
			return b.Less(a)
		default:
			return a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLessIsTransitiveOnSortedSample(t *testing.T) {
	sample := []MsgID{
		{2, 1, 5}, {0, 3, 1}, {1, 1, 1}, {0, 1, 9}, {0, 1, 1},
		{2, 1, 4}, {1, 2, 7}, {0, 2, 2}, {1, 1, 2},
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i].Less(sample[j]) })
	for i := 0; i+1 < len(sample); i++ {
		if sample[i+1].Less(sample[i]) {
			t.Fatalf("sort produced inversion at %d", i)
		}
	}
}
