// Package ids defines the process and message identities used across the
// whole system.
//
// The paper assumes "all messages are distinct. This can be easily ensured by
// adding an identity to each message, an identity being composed of a pair
// (local sequence number, sender identity)" (§2.2). In the crash-recovery
// model a plain volatile counter would repeat after a crash, so the local
// sequence number is qualified by the sender's incarnation number (a counter
// logged once per recovery by the node layer; see internal/node). The
// incarnation log is charged to the node/failure-detector layer, not to the
// broadcast protocol, preserving the paper's minimal-logging accounting
// (§4.3).
package ids

import (
	"fmt"
	"strconv"
)

// ProcessID identifies a process in the static group Π = {p, ..., q}.
// Processes are numbered 0..n-1.
type ProcessID int32

// Nobody is the zero-value "no process" sentinel. Valid processes are >= 0.
const Nobody ProcessID = -1

// GroupID identifies one independent ordering group when a process runs
// several of them side by side (sharded multi-group ordering). The paper's
// protocol is defined per group: each group is its own static group Π with
// its own Consensus instances, total order and message identities. Group 0
// is the only group of an unsharded deployment.
//
// A MsgID is unique within its group (the per-group protocol instance owns
// its own sequence counters and incarnation log), so anything that spans
// groups — the deterministic cross-group merge, client bookkeeping — must
// key on the (GroupID, MsgID) pair.
type GroupID int32

// String implements fmt.Stringer.
func (g GroupID) String() string { return "g" + strconv.Itoa(int(g)) }

// String implements fmt.Stringer.
func (p ProcessID) String() string {
	if p == Nobody {
		return "p?"
	}
	return "p" + strconv.Itoa(int(p))
}

// MsgID is the globally unique identity of an application message: the
// paper's (local sequence number, sender identity) pair, with the sequence
// number qualified by the sender's incarnation so identities never repeat
// across crashes.
type MsgID struct {
	Sender      ProcessID
	Incarnation uint32
	Seq         uint64
}

// String implements fmt.Stringer.
func (m MsgID) String() string {
	return fmt.Sprintf("%v.%d.%d", m.Sender, m.Incarnation, m.Seq)
}

// Less defines the canonical total order on message identities. It is the
// "predetermined deterministic rule" (Fig. 2) used by every process to append
// the messages decided by one Consensus instance to its Agreed queue in the
// same order.
func (m MsgID) Less(o MsgID) bool {
	if m.Sender != o.Sender {
		return m.Sender < o.Sender
	}
	if m.Incarnation != o.Incarnation {
		return m.Incarnation < o.Incarnation
	}
	return m.Seq < o.Seq
}

// Compare returns -1, 0 or +1 according to the canonical order.
func (m MsgID) Compare(o MsgID) int {
	switch {
	case m.Less(o):
		return -1
	case o.Less(m):
		return 1
	default:
		return 0
	}
}
