// Package msg defines application messages and the two protocol-facing
// containers of Fig. 1: the Unordered set and the Agreed queue.
//
// Both containers implement the idempotent semantics the paper requires:
// "if the same message is added twice the result is the same as if it is
// added just once (since messages have unique identifiers, duplicates can be
// detected and eliminated)" (§4.1).
package msg

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Message is an application message submitted to A-broadcast.
type Message struct {
	ID      ids.MsgID
	Payload []byte
}

// Equal reports whether two messages have the same identity and payload.
func (m Message) Equal(o Message) bool {
	return m.ID == o.ID && bytes.Equal(m.Payload, o.Payload)
}

// String implements fmt.Stringer.
func (m Message) String() string {
	return fmt.Sprintf("%v(%dB)", m.ID, len(m.Payload))
}

// Encode appends the message to w.
func (m Message) Encode(w *wire.Writer) {
	EncodeID(w, m.ID)
	w.Bytes32(m.Payload)
}

// DecodeMessage reads one message from r, copying the payload.
func DecodeMessage(r *wire.Reader) Message {
	var m Message
	m.ID = DecodeID(r)
	m.Payload = r.BytesCopy()
	return m
}

// EncodeID appends just a message identity to w — the unit of the
// digest-gossip wire format, which ships IDs (a few bytes) instead of
// payloads.
func EncodeID(w *wire.Writer, id ids.MsgID) {
	w.I64(int64(id.Sender))
	w.U64(uint64(id.Incarnation))
	w.U64(id.Seq)
}

// DecodeID reads one message identity from r.
func DecodeID(r *wire.Reader) ids.MsgID {
	var id ids.MsgID
	id.Sender = ids.ProcessID(r.I64())
	id.Incarnation = uint32(r.U64())
	id.Seq = r.U64()
	return id
}

// EncodeIDs encodes a count-prefixed list of message identities.
func EncodeIDs(w *wire.Writer, idList []ids.MsgID) {
	w.U64(uint64(len(idList)))
	for _, id := range idList {
		EncodeID(w, id)
	}
}

// DecodeIDs decodes a count-prefixed list of message identities.
func DecodeIDs(r *wire.Reader) []ids.MsgID {
	n := r.U64()
	if r.Err() != nil {
		return nil
	}
	capHint := n
	if capHint > 4096 {
		capHint = 4096 // n is attacker-controlled
	}
	out := make([]ids.MsgID, 0, capHint)
	for i := uint64(0); i < n; i++ {
		out = append(out, DecodeID(r))
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

// SortCanonical sorts ms in place by the predetermined deterministic rule
// (ascending MsgID order). Every process applies this rule to the result of
// each Consensus instance, so all processes append a decided batch to their
// Agreed queues in exactly the same order.
func SortCanonical(ms []Message) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID.Less(ms[j].ID) })
}

// EncodeBatch encodes a slice of messages (count-prefixed).
func EncodeBatch(w *wire.Writer, ms []Message) {
	w.U64(uint64(len(ms)))
	for _, m := range ms {
		m.Encode(w)
	}
}

// DecodeBatch decodes a slice of messages.
func DecodeBatch(r *wire.Reader) []Message {
	n := r.U64()
	if r.Err() != nil {
		return nil
	}
	// Cap the preallocation: n is attacker/disk-controlled.
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	ms := make([]Message, 0, capHint)
	for i := uint64(0); i < n; i++ {
		ms = append(ms, DecodeMessage(r))
		if r.Err() != nil {
			return nil
		}
	}
	return ms
}
