package msg

import (
	"hash/crc32"

	"repro/internal/ids"
	"repro/internal/wire"
)

// IDRec names one message inside an ID-only consensus value: the identity
// plus a checksum of the payload. When ordering and dissemination are split
// (ring mode), consensus decides vectors of IDRecs — a few dozen bytes per
// message regardless of payload size — and each process pairs the decided
// identity with the payload it received off the dissemination plane. The
// checksum lets a process reject a corrupted or mismatched payload before
// delivering it under that identity.
type IDRec struct {
	ID  ids.MsgID
	Sum uint32
}

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the payload checksum carried in an IDRec.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// Rec returns m's IDRec.
func Rec(m Message) IDRec {
	return IDRec{ID: m.ID, Sum: Checksum(m.Payload)}
}

// EncodeIDVec encodes a count-prefixed ID vector.
func EncodeIDVec(w *wire.Writer, recs []IDRec) {
	w.U64(uint64(len(recs)))
	for _, rec := range recs {
		EncodeID(w, rec.ID)
		w.U64(uint64(rec.Sum))
	}
}

// DecodeIDVec decodes a count-prefixed ID vector.
func DecodeIDVec(r *wire.Reader) []IDRec {
	n := r.U64()
	if r.Err() != nil {
		return nil
	}
	capHint := n
	if capHint > 4096 { // n is attacker/disk-controlled
		capHint = 4096
	}
	out := make([]IDRec, 0, capHint)
	for i := uint64(0); i < n; i++ {
		rec := IDRec{ID: DecodeID(r), Sum: uint32(r.U64())}
		if r.Err() != nil {
			return nil
		}
		out = append(out, rec)
	}
	return out
}
