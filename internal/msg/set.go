package msg

import (
	"repro/internal/ids"
	"repro/internal/wire"
)

// Set is the Unordered container: an idempotent set of messages keyed by
// identity. The zero value is not ready to use; call NewSet.
type Set struct {
	byID map[ids.MsgID]Message
	// sorted caches the canonical snapshot handed out by Slice. Every
	// mutation invalidates it; between mutations the gossip and proposal
	// paths (which call Slice once per tick/round) share one sorted slice
	// instead of re-sorting the whole set each time.
	sorted []Message
}

// NewSet returns an empty set.
func NewSet() *Set {
	return &Set{byID: make(map[ids.MsgID]Message)}
}

// Add inserts m and reports whether it was not already present. Adding a
// message twice is a no-op (idempotence, §4.1).
func (s *Set) Add(m Message) bool {
	if _, ok := s.byID[m.ID]; ok {
		return false
	}
	s.byID[m.ID] = m
	s.sorted = nil
	return true
}

// AddAll inserts every message in ms and returns the number newly added.
func (s *Set) AddAll(ms []Message) int {
	added := 0
	for _, m := range ms {
		if s.Add(m) {
			added++
		}
	}
	return added
}

// Remove deletes the message with the given id, if present.
func (s *Set) Remove(id ids.MsgID) {
	if _, ok := s.byID[id]; !ok {
		return
	}
	delete(s.byID, id)
	s.sorted = nil
}

// Contains reports whether a message with the given id is present.
func (s *Set) Contains(id ids.MsgID) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the message with the given id, if present.
func (s *Set) Get(id ids.MsgID) (Message, bool) {
	m, ok := s.byID[id]
	return m, ok
}

// Len returns the number of messages in the set.
func (s *Set) Len() int { return len(s.byID) }

// Slice returns the messages in canonical order. The slice is a shared
// snapshot, valid until the next mutation: callers must treat it as
// read-only (sub-slicing and iteration are fine; append/sort are not).
// Payloads are shared.
func (s *Set) Slice() []Message {
	if s.sorted == nil {
		out := make([]Message, 0, len(s.byID))
		for _, m := range s.byID {
			out = append(out, m)
		}
		SortCanonical(out)
		s.sorted = out
	}
	return s.sorted
}

// Clone returns an independent copy of the set (payloads shared).
func (s *Set) Clone() *Set {
	c := &Set{byID: make(map[ids.MsgID]Message, len(s.byID))}
	for id, m := range s.byID {
		c.byID[id] = m
	}
	return c
}

// SubtractDelivered removes every message that the delivery state already
// contains: the paper's "Unordered_p ← Unordered_p ⊖ Agreed_p".
func (s *Set) SubtractDelivered(contains func(ids.MsgID) bool) {
	for id := range s.byID {
		if contains(id) {
			delete(s.byID, id)
			s.sorted = nil
		}
	}
}

// Encode appends the set to w in canonical order.
func (s *Set) Encode(w *wire.Writer) {
	EncodeBatch(w, s.Slice())
}

// DecodeSet reads a set from r.
func DecodeSet(r *wire.Reader) *Set {
	ms := DecodeBatch(r)
	set := NewSet()
	set.AddAll(ms)
	return set
}
