package msg

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/wire"
)

func mk(sender int32, inc uint32, seq uint64, payload string) Message {
	return Message{
		ID:      ids.MsgID{Sender: ids.ProcessID(sender), Incarnation: inc, Seq: seq},
		Payload: []byte(payload),
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := mk(2, 3, 99, "the payload")
	w := wire.NewWriter(0)
	m.Encode(w)
	r := wire.NewReader(w.Bytes())
	got := DecodeMessage(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip mismatch: %v vs %v", got, m)
	}
}

func TestBatchRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		in := make([]Message, int(n)%32)
		for i := range in {
			payload := make([]byte, rng.IntN(64))
			for b := range payload {
				payload[b] = byte(rng.Uint64())
			}
			in[i] = Message{
				ID: ids.MsgID{
					Sender:      ids.ProcessID(rng.IntN(7)),
					Incarnation: uint32(rng.IntN(4)),
					Seq:         rng.Uint64N(1000),
				},
				Payload: payload,
			}
		}
		w := wire.NewWriter(0)
		EncodeBatch(w, in)
		r := wire.NewReader(w.Bytes())
		out := DecodeBatch(r)
		if r.Done() != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !out[i].Equal(in[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSortCanonicalPermutationInvariant is the deterministic-rule property:
// any permutation of a batch sorts to the same sequence.
func TestSortCanonicalPermutationInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 1 + rng.IntN(20)
		batch := make([]Message, n)
		for i := range batch {
			batch[i] = mk(int32(rng.IntN(5)), uint32(rng.IntN(3)), rng.Uint64N(50), "x")
		}
		a := make([]Message, n)
		b := make([]Message, n)
		copy(a, batch)
		copy(b, batch)
		rng.Shuffle(n, func(i, j int) { b[i], b[j] = b[j], b[i] })
		SortCanonical(a)
		SortCanonical(b)
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAddIsIdempotent(t *testing.T) {
	s := NewSet()
	m := mk(0, 1, 1, "a")
	if !s.Add(m) {
		t.Fatal("first add reported duplicate")
	}
	if s.Add(m) {
		t.Fatal("second add reported new")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSetSubtractDelivered(t *testing.T) {
	s := NewSet()
	for i := uint64(1); i <= 10; i++ {
		s.Add(mk(0, 1, i, "m"))
	}
	s.SubtractDelivered(func(id ids.MsgID) bool { return id.Seq <= 5 })
	if s.Len() != 5 {
		t.Fatalf("len = %d, want 5", s.Len())
	}
	for _, m := range s.Slice() {
		if m.ID.Seq <= 5 {
			t.Fatalf("message %v should have been subtracted", m.ID)
		}
	}
}

func TestSetSliceIsCanonicallySorted(t *testing.T) {
	s := NewSet()
	s.Add(mk(2, 1, 1, "c"))
	s.Add(mk(0, 1, 2, "a2"))
	s.Add(mk(0, 1, 1, "a1"))
	s.Add(mk(1, 1, 1, "b"))
	sl := s.Slice()
	for i := 0; i+1 < len(sl); i++ {
		if sl[i+1].ID.Less(sl[i].ID) {
			t.Fatalf("slice not sorted at %d", i)
		}
	}
}

func TestSetCloneIsIndependent(t *testing.T) {
	s := NewSet()
	s.Add(mk(0, 1, 1, "a"))
	c := s.Clone()
	c.Add(mk(0, 1, 2, "b"))
	if s.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d vs %d", s.Len(), c.Len())
	}
}

func TestSetRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add(mk(0, 1, 1, "a"))
	s.Add(mk(1, 2, 3, "b"))
	w := wire.NewWriter(0)
	s.Encode(w)
	r := wire.NewReader(w.Bytes())
	got := DecodeSet(r)
	if r.Done() != nil || got.Len() != 2 {
		t.Fatalf("round trip: len=%d", got.Len())
	}
	if !got.Contains(ids.MsgID{Sender: 1, Incarnation: 2, Seq: 3}) {
		t.Fatal("missing member after round trip")
	}
}

func TestQueueAppendBatchDeduplicates(t *testing.T) {
	q := NewQueue()
	first := q.AppendBatch([]Message{mk(0, 1, 1, "a"), mk(1, 1, 1, "b")})
	if len(first) != 2 {
		t.Fatalf("appended %d", len(first))
	}
	// ⊕: re-appending an already ordered message is a no-op.
	second := q.AppendBatch([]Message{mk(0, 1, 1, "a"), mk(2, 1, 1, "c")})
	if len(second) != 1 || second[0].ID.Sender != 2 {
		t.Fatalf("dedup failed: %v", second)
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestQueueAppendBatchUsesCanonicalOrder(t *testing.T) {
	q := NewQueue()
	q.AppendBatch([]Message{mk(2, 1, 1, "c"), mk(0, 1, 1, "a"), mk(1, 1, 1, "b")})
	want := []int32{0, 1, 2}
	for i, s := range want {
		if q.At(i).ID.Sender != ids.ProcessID(s) {
			t.Fatalf("position %d: sender %v", i, q.At(i).ID.Sender)
		}
	}
}

func TestQueuePositionsAndContains(t *testing.T) {
	q := NewQueue()
	q.AppendBatch([]Message{mk(0, 1, 1, "a")})
	q.AppendBatch([]Message{mk(0, 1, 2, "b")})
	if !q.Contains(ids.MsgID{Sender: 0, Incarnation: 1, Seq: 1}) {
		t.Fatal("contains failed")
	}
	if q.Position(ids.MsgID{Sender: 0, Incarnation: 1, Seq: 2}) != 1 {
		t.Fatal("position wrong")
	}
	if q.Position(ids.MsgID{Sender: 9, Incarnation: 1, Seq: 1}) != -1 {
		t.Fatal("missing message should be -1")
	}
}

// TestQueueRoundTripPreservesInterBatchOrder guards against re-sorting the
// whole queue on decode: batch boundaries must not matter.
func TestQueueRoundTripPreservesInterBatchOrder(t *testing.T) {
	q := NewQueue()
	q.AppendBatch([]Message{mk(2, 1, 7, "late-sender-first")})
	q.AppendBatch([]Message{mk(0, 1, 1, "earlier-id-later-round")})
	w := wire.NewWriter(0)
	q.Encode(w)
	r := wire.NewReader(w.Bytes())
	got := DecodeQueue(r)
	if r.Done() != nil || got.Len() != 2 {
		t.Fatal("round trip failed")
	}
	if got.At(0).ID.Sender != 2 || got.At(1).ID.Sender != 0 {
		t.Fatalf("order not preserved: %v, %v", got.At(0).ID, got.At(1).ID)
	}
}

// TestQueuePrefixProperty: two queues built from the same batch stream are
// bytewise-identical sequences (the foundation of Total Order).
func TestQueuePrefixProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		q1, q2 := NewQueue(), NewQueue()
		for round := 0; round < 10; round++ {
			batch := make([]Message, rng.IntN(5))
			for i := range batch {
				batch[i] = mk(int32(rng.IntN(3)), 1, rng.Uint64N(30), "m")
			}
			// q2 receives the batch permuted.
			perm := make([]Message, len(batch))
			copy(perm, batch)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			q1.AppendBatch(batch)
			q2.AppendBatch(perm)
		}
		a, b := q1.Slice(), q2.Slice()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueSuffix(t *testing.T) {
	q := NewQueue()
	q.AppendBatch([]Message{mk(0, 1, 1, "a"), mk(0, 1, 2, "b"), mk(0, 1, 3, "c")})
	suf := q.Suffix(1)
	if len(suf) != 2 || suf[0].ID.Seq != 2 {
		t.Fatalf("suffix wrong: %v", suf)
	}
	if q.Suffix(99) != nil {
		t.Fatal("out-of-range suffix should be nil")
	}
	if got := q.Suffix(-1); len(got) != 3 {
		t.Fatal("negative suffix should return all")
	}
}

func TestMessageEqual(t *testing.T) {
	a := mk(0, 1, 1, "x")
	b := mk(0, 1, 1, "x")
	c := mk(0, 1, 1, "y")
	if !a.Equal(b) {
		t.Fatal("equal messages reported unequal")
	}
	if a.Equal(c) {
		t.Fatal("different payloads reported equal")
	}
	if !bytes.Equal(a.Payload, []byte("x")) {
		t.Fatal("payload mangled")
	}
}
