package msg

import (
	"repro/internal/ids"
	"repro/internal/wire"
)

// Queue is the Agreed container of the basic protocol: an append-only,
// duplicate-free queue of ordered messages. The ⊕ append operation adds each
// decided message at most once ("A message m appears at most once", §2.2).
//
// The zero value is not ready to use; call NewQueue.
type Queue struct {
	seq   []Message
	index map[ids.MsgID]int // id -> position in seq
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{index: make(map[ids.MsgID]int)}
}

// AppendBatch applies the paper's ⊕ operation: the messages of one Consensus
// result that are not already in the queue are moved to its tail following
// the predetermined deterministic rule. It returns the messages actually
// appended, in delivery order.
func (q *Queue) AppendBatch(batch []Message) []Message {
	sorted := make([]Message, len(batch))
	copy(sorted, batch)
	SortCanonical(sorted)
	appended := make([]Message, 0, len(sorted))
	for _, m := range sorted {
		if _, dup := q.index[m.ID]; dup {
			continue
		}
		q.index[m.ID] = len(q.seq)
		q.seq = append(q.seq, m)
		appended = append(appended, m)
	}
	return appended
}

// Contains reports whether the message with the given id has been ordered.
func (q *Queue) Contains(id ids.MsgID) bool {
	_, ok := q.index[id]
	return ok
}

// Position returns the delivery position of id, or -1 if absent.
func (q *Queue) Position(id ids.MsgID) int {
	if p, ok := q.index[id]; ok {
		return p
	}
	return -1
}

// Len returns the number of ordered messages.
func (q *Queue) Len() int { return len(q.seq) }

// At returns the message at delivery position i.
func (q *Queue) At(i int) Message { return q.seq[i] }

// Slice returns a copy of the ordered sequence (payloads shared).
func (q *Queue) Slice() []Message {
	out := make([]Message, len(q.seq))
	copy(out, q.seq)
	return out
}

// Suffix returns a copy of the sequence from position i (payloads shared).
func (q *Queue) Suffix(i int) []Message {
	if i < 0 {
		i = 0
	}
	if i >= len(q.seq) {
		return nil
	}
	out := make([]Message, len(q.seq)-i)
	copy(out, q.seq[i:])
	return out
}

// Encode appends the queue to w.
func (q *Queue) Encode(w *wire.Writer) {
	EncodeBatch(w, q.seq)
}

// DecodeQueue reads a queue from r, preserving the encoded delivery order
// (the queue interleaves batches from many rounds, so it must not be
// re-sorted as a whole).
func DecodeQueue(r *wire.Reader) *Queue {
	ms := DecodeBatch(r)
	q := NewQueue()
	for _, m := range ms {
		if _, dup := q.index[m.ID]; dup {
			continue
		}
		q.index[m.ID] = len(q.seq)
		q.seq = append(q.seq, m)
	}
	return q
}
