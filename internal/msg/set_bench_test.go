package msg

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

// BenchmarkSetSlice measures the canonical-snapshot path the gossip and
// proposal ticks hit once per interval: with the cached snapshot, repeated
// Slice calls between mutations are allocation-free instead of re-sorting
// (and re-allocating) the whole Unordered set every time.
func BenchmarkSetSlice(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewSet()
			for i := 0; i < n; i++ {
				s.Add(mk(0, 1, uint64(i+1), "payload"))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(s.Slice()) != n {
					b.Fatal("bad slice")
				}
			}
		})
	}
}

// BenchmarkSetSliceInvalidated is the worst case: every iteration mutates
// the set, so every Slice re-sorts. This is the pre-cache behavior for
// comparison.
func BenchmarkSetSliceInvalidated(b *testing.B) {
	const n = 512
	s := NewSet()
	for i := 0; i < n; i++ {
		s.Add(mk(0, 1, uint64(i+1), "payload"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := mk(0, 1, uint64(i%n+1), "payload")
		s.Remove(id.ID)
		s.Add(id)
		if len(s.Slice()) != n {
			b.Fatal("bad slice")
		}
	}
}

// TestSetSliceCacheInvalidation pins the snapshot contract: Slice is stable
// (same contents) across calls, and every mutation path — Add, Remove,
// SubtractDelivered — refreshes it.
func TestSetSliceCacheInvalidation(t *testing.T) {
	s := NewSet()
	s.Add(mk(0, 1, 1, "a"))
	s.Add(mk(1, 1, 1, "b"))
	first := s.Slice()
	if len(first) != 2 {
		t.Fatalf("len = %d", len(first))
	}

	// No mutation: the same snapshot is reused.
	again := s.Slice()
	if &first[0] != &again[0] {
		t.Fatal("unmutated set rebuilt its snapshot")
	}
	// Add of a duplicate is a no-op and must not invalidate.
	s.Add(mk(0, 1, 1, "a"))
	if dup := s.Slice(); &dup[0] != &first[0] {
		t.Fatal("duplicate Add invalidated the snapshot")
	}
	// Remove of a missing id is a no-op and must not invalidate.
	s.Remove(mk(9, 9, 9, "x").ID)
	if miss := s.Slice(); &miss[0] != &first[0] {
		t.Fatal("no-op Remove invalidated the snapshot")
	}

	s.Add(mk(2, 1, 1, "c"))
	if got := s.Slice(); len(got) != 3 {
		t.Fatalf("after Add: len = %d", len(got))
	}
	s.Remove(mk(1, 1, 1, "b").ID)
	if got := s.Slice(); len(got) != 2 {
		t.Fatalf("after Remove: len = %d", len(got))
	}
	s.SubtractDelivered(func(id ids.MsgID) bool { return id.Sender == 0 })
	got := s.Slice()
	if len(got) != 1 || got[0].ID.Sender != 2 {
		t.Fatalf("after SubtractDelivered: %v", got)
	}
}
