// Package reduction implements the §6.1 direction of the equivalence:
// Consensus built on top of Atomic Broadcast. "To propose a value a process
// atomically broadcasts it; the first value to be delivered can be chosen
// as the decided value." Together with the paper's transformation (core),
// this closes the loop: the two problems are equivalent in asynchronous
// crash-recovery systems.
package reduction

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// Consensus turns one process's Atomic Broadcast endpoint into a
// multi-instance Consensus. Feed every delivery into Tap (chain it in
// core.Config.OnDeliver); processes decide the first proposal delivered for
// each instance.
type Consensus struct {
	mu        sync.Mutex
	decisions map[uint64][]byte
	waiters   map[uint64][]chan struct{}
}

// New creates an empty reduction consensus.
func New() *Consensus {
	return &Consensus{
		decisions: make(map[uint64][]byte),
		waiters:   make(map[uint64][]chan struct{}),
	}
}

// Tap consumes one delivery. The first delivered proposal of each instance
// is the decision; later proposals for the same instance are ignored —
// total order makes this deterministic and identical at every process.
func (c *Consensus) Tap(d core.Delivery) {
	instance, value, ok := decodeProposal(d.Msg.Payload)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, decided := c.decisions[instance]; decided {
		return
	}
	c.decisions[instance] = value
	for _, ch := range c.waiters[instance] {
		close(ch)
	}
	delete(c.waiters, instance)
}

// Propose atomically broadcasts this process's proposal for the instance
// and blocks until the instance decides. It returns the decided value.
func (c *Consensus) Propose(ctx context.Context, proto *core.Protocol, instance uint64, v []byte) ([]byte, error) {
	if dec, ok := c.Decision(instance); ok {
		return dec, nil
	}
	c.mu.Lock()
	ch := make(chan struct{})
	c.waiters[instance] = append(c.waiters[instance], ch)
	c.mu.Unlock()

	if _, err := proto.Broadcast(ctx, encodeProposal(instance, v)); err != nil {
		// The broadcast may still be delivered (crash-recovery
		// semantics); the decision wait below is what matters, but
		// without a live protocol there is nothing to wait for.
		return nil, fmt.Errorf("reduction: broadcast: %w", err)
	}
	select {
	case <-ch:
		dec, _ := c.Decision(instance)
		return dec, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Decision returns the decided value of an instance, if any.
func (c *Consensus) Decision(instance uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.decisions[instance]
	return v, ok
}

func encodeProposal(instance uint64, v []byte) []byte {
	w := wire.NewWriter(16 + len(v))
	w.U64(instance)
	w.Bytes32(v)
	return w.Bytes()
}

func decodeProposal(payload []byte) (uint64, []byte, bool) {
	r := wire.NewReader(payload)
	instance := r.U64()
	v := r.BytesCopy()
	if r.Done() != nil {
		return 0, nil, false
	}
	return instance, v, true
}
