package reduction_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/reduction"
)

func buildCluster(n int, seed uint64) (*harness.Cluster, []*reduction.Consensus) {
	conses := make([]*reduction.Consensus, n)
	for i := range conses {
		conses[i] = reduction.New()
	}
	c := harness.NewCluster(harness.Options{
		N:    n,
		Seed: seed,
		OnDeliver: func(pid ids.ProcessID, d core.Delivery) {
			conses[pid].Tap(d)
		},
	})
	return c, conses
}

func TestConsensusFromAtomicBroadcast(t *testing.T) {
	c, conses := buildCluster(3, 71)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// All three propose concurrently to 5 instances.
	var wg sync.WaitGroup
	decisions := make([][][]byte, 3)
	for p := 0; p < 3; p++ {
		decisions[p] = make([][]byte, 5)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for inst := uint64(0); inst < 5; inst++ {
				v := []byte(fmt.Sprintf("p%d-inst%d", p, inst))
				dec, err := conses[p].Propose(ctx, c.Nodes[p].Proto(), inst, v)
				if err != nil {
					t.Errorf("p%d propose %d: %v", p, inst, err)
					return
				}
				decisions[p][inst] = dec
			}
		}(p)
	}
	wg.Wait()

	for inst := 0; inst < 5; inst++ {
		// Uniform Agreement across the reduction.
		for p := 1; p < 3; p++ {
			if !bytes.Equal(decisions[0][inst], decisions[p][inst]) {
				t.Fatalf("instance %d: p0 decided %q, p%d decided %q",
					inst, decisions[0][inst], p, decisions[p][inst])
			}
		}
		// Uniform Validity: the decision is one of the proposals.
		valid := false
		for p := 0; p < 3; p++ {
			if string(decisions[0][inst]) == fmt.Sprintf("p%d-inst%d", p, inst) {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("instance %d decided a never-proposed value %q", inst, decisions[0][inst])
		}
	}
}

func TestProposeIsIdempotentAfterDecision(t *testing.T) {
	c, conses := buildCluster(3, 72)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, err := conses[0].Propose(ctx, c.Nodes[0].Proto(), 0, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-proposing a different value returns the settled decision.
	second, err := conses[0].Propose(ctx, c.Nodes[0].Proto(), 0, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("decision changed: %q -> %q", first, second)
	}
}

func TestDecisionVisibleToNonProposers(t *testing.T) {
	c, conses := buildCluster(3, 73)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	want, err := conses[1].Propose(ctx, c.Nodes[1].Proto(), 9, []byte("only-p1"))
	if err != nil {
		t.Fatal(err)
	}
	// Non-proposers learn it via their own delivery taps.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if got, ok := conses[2].Decision(9); ok {
			if !bytes.Equal(got, want) {
				t.Fatalf("p2 decided %q, want %q", got, want)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("p2 never learned the decision")
}
