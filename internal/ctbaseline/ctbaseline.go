// Package ctbaseline implements the Chandra–Toueg Atomic Broadcast for the
// crash-stop (no-recovery) model [3], the protocol the paper extends: a
// reliable broadcast disseminates messages, and consecutive Consensus
// instances order batches of them. There is no stable storage, no gossip,
// no replay — "when crashes are definitive, the protocol reduces to the
// Chandra-Toueg's Atomic Broadcast protocol" (§5.6).
//
// Experiment E7 runs this baseline against the crash-recovery protocol on
// identical fault-free workloads to measure the price of recoverability.
package ctbaseline

import (
	"context"
	"errors"
	"sync"

	"repro/internal/consensus"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/router"
	"repro/internal/wire"
)

// ErrStopped is returned when the process stops mid-operation.
var ErrStopped = errors.New("ctbaseline: stopped")

// Delivery mirrors core.Delivery for the baseline.
type Delivery struct {
	Msg   msg.Message
	Round uint64
	Pos   uint64
}

// Config parameterizes one baseline process.
type Config struct {
	PID ids.ProcessID
	N   int
	// OnDeliver is invoked in delivery order.
	OnDeliver func(Delivery)
}

// Protocol is one crash-stop process. R-broadcast floods data messages;
// the sequencer runs the CT transformation.
type Protocol struct {
	cfg  Config
	cons consensus.API
	net  router.Net

	mu         sync.Mutex
	k          uint64
	seq        uint64
	rDelivered *msg.Set // R-delivered, not yet A-delivered
	seen       *msg.Set // every R-delivered message (flood dedup)
	agreed     *msg.Queue
	waiters    map[ids.MsgID][]chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wake   chan struct{}
	wg     sync.WaitGroup
}

// New creates a baseline process over the given consensus engine and
// network binding (use router.ChanCore).
func New(cfg Config, cons consensus.API, net router.Net) *Protocol {
	return &Protocol{
		cfg:        cfg,
		cons:       cons,
		net:        net,
		rDelivered: msg.NewSet(),
		seen:       msg.NewSet(),
		agreed:     msg.NewQueue(),
		waiters:    make(map[ids.MsgID][]chan struct{}),
		wake:       make(chan struct{}, 1),
	}
}

// Start forks the sequencer task.
func (p *Protocol) Start(ctx context.Context) {
	p.ctx, p.cancel = context.WithCancel(ctx)
	p.wg.Add(1)
	go p.sequencer()
}

// Stop halts the process (a crash-stop crash: it never comes back).
func (p *Protocol) Stop() {
	if p.cancel != nil {
		p.cancel()
	}
	p.wg.Wait()
}

// Broadcast R-broadcasts m and waits until it is A-delivered locally.
func (p *Protocol) Broadcast(ctx context.Context, payload []byte) (ids.MsgID, error) {
	p.mu.Lock()
	p.seq++
	m := msg.Message{
		ID:      ids.MsgID{Sender: p.cfg.PID, Incarnation: 1, Seq: p.seq},
		Payload: append([]byte(nil), payload...),
	}
	p.seen.Add(m)
	p.rDelivered.Add(m)
	ch := make(chan struct{})
	p.waiters[m.ID] = append(p.waiters[m.ID], ch)
	p.mu.Unlock()

	p.flood(m)
	p.poke()

	select {
	case <-ch:
		return m.ID, nil
	case <-ctx.Done():
		return m.ID, ctx.Err()
	case <-p.ctx.Done():
		return m.ID, ErrStopped
	}
}

// flood transmits a data message to everyone (reliable broadcast's eager
// push; receivers re-flood once).
func (p *Protocol) flood(m msg.Message) {
	w := wire.NewWriter(32 + len(m.Payload))
	m.Encode(w)
	p.net.Multisend(w.Bytes())
}

// OnMessage handles R-broadcast data packets.
func (p *Protocol) OnMessage(from ids.ProcessID, payload []byte) {
	r := wire.NewReader(payload)
	m := msg.DecodeMessage(r)
	if r.Done() != nil {
		return
	}
	p.mu.Lock()
	fresh := p.seen.Add(m)
	if fresh && !p.agreed.Contains(m.ID) {
		p.rDelivered.Add(m)
	}
	p.mu.Unlock()
	if fresh {
		// Relay once: with every correct process relaying, a message
		// received by any correct process reaches all of them.
		p.flood(m)
		p.poke()
	}
}

func (p *Protocol) poke() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// sequencer is the CT ordering loop: propose the R-delivered-but-unordered
// set to Consensus instance k; A-deliver the decided batch canonically.
func (p *Protocol) sequencer() {
	defer p.wg.Done()
	for {
		// Wait for something to order.
		for {
			p.mu.Lock()
			ready := p.rDelivered.Len() > 0
			p.mu.Unlock()
			if ready {
				break
			}
			select {
			case <-p.ctx.Done():
				return
			case <-p.wake:
			}
		}
		p.mu.Lock()
		k := p.k
		batch := p.rDelivered.Slice()
		p.mu.Unlock()

		w := wire.NewWriter(64)
		msg.EncodeBatch(w, batch)
		if err := p.cons.Propose(k, w.Bytes()); err != nil {
			return
		}
		result, err := p.cons.WaitDecided(p.ctx, k)
		if err != nil {
			return
		}
		r := wire.NewReader(result)
		decided := msg.DecodeBatch(r)

		p.mu.Lock()
		appended := p.agreed.AppendBatch(decided)
		p.k = k + 1
		p.rDelivered.SubtractDelivered(p.agreed.Contains)
		deliveries := make([]Delivery, len(appended))
		for i, m := range appended {
			deliveries[i] = Delivery{
				Msg:   m,
				Round: k,
				Pos:   uint64(p.agreed.Position(m.ID)),
			}
			if chans, ok := p.waiters[m.ID]; ok {
				for _, ch := range chans {
					close(ch)
				}
				delete(p.waiters, m.ID)
			}
		}
		cb := p.cfg.OnDeliver
		p.mu.Unlock()

		if cb != nil {
			for _, d := range deliveries {
				cb(d)
			}
		}
	}
}

// Sequence returns the A-delivered messages in order.
func (p *Protocol) Sequence() []msg.Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.agreed.Slice()
}

// Delivered reports whether id was A-delivered.
func (p *Protocol) Delivered(id ids.MsgID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.agreed.Contains(id)
}

// Round returns the current round counter.
func (p *Protocol) Round() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.k
}
