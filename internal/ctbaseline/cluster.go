package ctbaseline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Cluster assembles n crash-stop processes over an in-memory network (for
// the E7 baseline benchmarks and tests).
type Cluster struct {
	Net   *transport.Mem
	Procs []*Protocol

	routers   []*router.Router
	detectors []*fd.Detector
	engines   []*consensus.Engine
	cancel    context.CancelFunc
}

// NewCluster builds and starts the baseline cluster. onDeliver, if non-nil,
// receives every delivery tagged with the process id.
func NewCluster(n int, netOpts transport.MemOptions, onDeliver func(ids.ProcessID, Delivery)) (*Cluster, error) {
	c := &Cluster{Net: transport.NewMem(n, netOpts)}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	for p := 0; p < n; p++ {
		pid := ids.ProcessID(p)
		ep, err := c.Net.Attach(pid)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("ctbaseline: attach %v: %w", pid, err)
		}
		rt := router.New(ep)
		det := fd.New(pid, n, 1, fd.Options{
			Heartbeat: 5 * time.Millisecond,
			Timeout:   30 * time.Millisecond,
		}, rt.Bound(router.ChanFD))
		eng, err := consensus.New(consensus.Config{
			PID:      pid,
			N:        n,
			Policy:   consensus.PolicyLeader,
			RetryMin: 3 * time.Millisecond,
			RetryMax: 50 * time.Millisecond,
			Seed:     uint64(p) + 1,
		}, storage.Null{}, rt.Bound(router.ChanConsensus), det)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("ctbaseline: engine %v: %w", pid, err)
		}
		cfg := Config{PID: pid, N: n}
		if onDeliver != nil {
			cfg.OnDeliver = func(d Delivery) { onDeliver(pid, d) }
		}
		proto := New(cfg, eng, rt.Bound(router.ChanCore))
		rt.Handle(router.ChanFD, det.OnMessage)
		rt.Handle(router.ChanConsensus, eng.OnMessage)
		rt.Handle(router.ChanCore, proto.OnMessage)
		rt.Start(ctx)
		det.Start(ctx)
		eng.Start(ctx)
		proto.Start(ctx)

		c.Procs = append(c.Procs, proto)
		c.routers = append(c.routers, rt)
		c.detectors = append(c.detectors, det)
		c.engines = append(c.engines, eng)
	}
	return c, nil
}

// Stop tears the cluster down.
func (c *Cluster) Stop() {
	c.cancel()
	for i := range c.Procs {
		c.routers[i].Stop()
		c.Procs[i].Stop()
		c.engines[i].Stop()
		c.detectors[i].Stop()
	}
	c.Net.Close()
}
