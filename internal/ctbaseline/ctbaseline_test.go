package ctbaseline

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ids"
	"repro/internal/transport"
)

func TestBaselineDeliversInTotalOrder(t *testing.T) {
	var mu sync.Mutex
	histories := make(map[ids.ProcessID][]ids.MsgID)
	c, err := NewCluster(3, transport.MemOptions{Seed: 1}, func(pid ids.ProcessID, d Delivery) {
		mu.Lock()
		defer mu.Unlock()
		histories[pid] = append(histories[pid], d.Msg.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := c.Procs[p].Broadcast(ctx, []byte(fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Errorf("broadcast p%d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	// Everyone eventually delivers all 30.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for p := 0; p < 3; p++ {
			if len(c.Procs[p].Sequence()) < 30 {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for p := 0; p < 3; p++ {
		if len(histories[ids.ProcessID(p)]) != 30 {
			t.Fatalf("p%d delivered %d/30", p, len(histories[ids.ProcessID(p)]))
		}
	}
	if err := check.VerifyPrefix(histories); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSurvivesMinorityCrashStop(t *testing.T) {
	c, err := NewCluster(3, transport.MemOptions{Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One crash-stop failure (never returns).
	c.Procs[2].Stop()

	id, err := c.Procs[0].Broadcast(ctx, []byte("still works"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if c.Procs[0].Delivered(id) && c.Procs[1].Delivered(id) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("survivors never delivered")
}

func TestBaselineFloodReachesNonSenders(t *testing.T) {
	c, err := NewCluster(3, transport.MemOptions{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	id, err := c.Procs[1].Broadcast(ctx, []byte("from p1"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Procs[0].Delivered(id) && c.Procs[2].Delivered(id) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("message never reached non-senders")
}
